"""The joint training loop (paper §IV-B-3, §V-A).

One training iteration mirrors the paper's XDL/Euler deployment loop:
the worker asks the graph engine for meta-path walk samples plus
negatives, computes the triplet loss over all relation types jointly,
and applies an (asynchronous in the paper, synchronous here) AdaGrad
update.  Curvatures are clamped after every step.

Two data planes feed the loop.  The default ``"batched"`` plane walks
meta-paths in blocks (one alias draw per level for every walk at once)
and attaches negatives with array-native draws, handing the loss a
:class:`~repro.graph.sampling.SampleBatch`.  The ``"looped"`` plane is
the original one-pair-at-a-time reference implementation, kept for
parity testing and as documentation of the semantics.

The forward/backward itself runs on the model's encoder *compute
plane* (``AMCADConfig.compute_plane``): ``"frontier"`` dedups the GCN
receptive field into per-level unique frontiers before touching the
tape, ``"recursive"`` is the reference recursion.
``TrainerConfig.plan_refresh`` adds cross-step reuse of the frontier
plane's captured neighbour draws.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.graph.metapath import MetaPathWalker
from repro.graph.sampling import NegativeSampler, SampleBatch
from repro.graph.schema import Relation
from repro.models.amcad import AMCAD
from repro.models.plan import NeighborDrawCache
from repro.training.optim import AdaGrad

DATA_PLANES = ("batched", "looped")


@dataclasses.dataclass
class TrainerConfig:
    """Loop hyper-parameters (paper §VI-A-3 scaled down).

    The paper uses batch 1024, K=6 negatives, lr=1e-2; defaults here
    keep those ratios at laptop scale.  ``data_plane`` selects the
    sampling implementation: ``"batched"`` (array-native, default) or
    ``"looped"`` (the per-pair reference path).

    ``plan_refresh`` controls encode-plan reuse across steps on the
    frontier compute plane: with a value N > 1, ``train()`` attaches a
    :class:`~repro.models.plan.NeighborDrawCache` to the encoder for
    the duration of the loop, so a node revisited within an N-step
    window reuses its captured neighbour draws (plans are cheaper to
    build and the GCN sees a stable frontier), and the cache is
    cleared — draws resampled — every N steps, then detached before
    ``train()`` returns (inference never sees training-time draws).
    The default 1 resamples every step, matching the paper's
    stochastic aggregation exactly.
    """

    steps: int = 60
    batch_size: int = 64
    num_negatives: int = 6
    easy_ratio: float = 2.0 / 3.0
    learning_rate: float = 1e-2
    warmup_steps: int = 10
    clip_norm: float = 5.0
    seed: int = 0
    data_plane: str = "batched"
    plan_refresh: int = 1


@dataclasses.dataclass
class TrainingReport:
    """What a training run produced (losses, wall-clock, grad norms)."""

    losses: List[float]
    wall_seconds: float
    steps: int
    samples_seen: int

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("nan")

    @property
    def mean_tail_loss(self) -> float:
        """Mean of the last quarter of steps — a stable convergence proxy."""
        if not self.losses:
            return float("nan")
        tail = self.losses[-max(1, len(self.losses) // 4):]
        return float(np.mean(tail))


class Trainer:
    """Trains an :class:`AMCAD` model (or variant) on its graph."""

    def __init__(self, model: AMCAD, config: Optional[TrainerConfig] = None,
                 walker: Optional[MetaPathWalker] = None,
                 negative_sampler: Optional[NegativeSampler] = None):
        self.model = model
        self.config = config or TrainerConfig()
        cfg = self.config
        if cfg.data_plane not in DATA_PLANES:
            raise ValueError("data_plane must be one of %s, got %r"
                             % (", ".join(DATA_PLANES), cfg.data_plane))
        if cfg.plan_refresh < 1:
            raise ValueError("plan_refresh must be >= 1, got %d"
                             % cfg.plan_refresh)
        if cfg.plan_refresh > 1 and model.encoder.compute_plane != "frontier":
            raise ValueError(
                "plan_refresh > 1 reuses frontier-plane encode plans; it has "
                "no effect on compute_plane=%r — set the model's "
                "compute_plane to 'frontier' or leave plan_refresh at 1"
                % model.encoder.compute_plane)
        # drop any stale cache a previous trainer left on the encoder;
        # train() attaches a fresh one for the duration of the loop only
        model.encoder.draw_cache = None
        self._steps_done = 0
        self.rng = np.random.default_rng(cfg.seed)
        self.walker = walker or MetaPathWalker(model.graph)
        self.negative_sampler = negative_sampler or NegativeSampler(
            model.graph, num_negatives=cfg.num_negatives,
            easy_ratio=cfg.easy_ratio)
        self.optimizer = AdaGrad(model.parameters(),
                                 learning_rate=cfg.learning_rate,
                                 warmup_steps=cfg.warmup_steps,
                                 clip_norm=cfg.clip_norm)
        self._pair_stream = self.walker.iter_pairs(self.rng)
        self._buffers: dict = {}
        # batched plane: per-relation (src, pos) array chunks, and how
        # many walks each refill round advances together
        self._array_buffers: Dict[Relation, List[Tuple[np.ndarray,
                                                       np.ndarray]]] = {}
        self._walks_per_round = max(len(self.walker.meta_paths),
                                    3 * cfg.batch_size)

    def _next_batch(self):
        """A relation-homogeneous batch from the configured data plane."""
        if self.config.data_plane == "looped":
            return self._next_batch_looped()
        return self._next_batch_batched()

    def _next_batch_looped(self):
        """The reference path: pairs stream in one at a time.

        Pairs arrive in mixed relation order; buffering until one
        relation fills a batch keeps every training step a single large
        batched encode instead of six small ones (≈6× fewer python-op
        dispatches — all relations still train jointly over steps).
        """
        target = self.config.batch_size
        while True:
            try:
                pair = next(self._pair_stream)
            except StopIteration:  # pragma: no cover - stream is endless
                break
            bucket = self._buffers.setdefault(pair.relation, [])
            bucket.append(pair)
            if len(bucket) >= target:
                self._buffers[pair.relation] = []
                return self.negative_sampler.sample_batch(self.rng, bucket)
        merged = [p for bucket in self._buffers.values() for p in bucket]
        self._buffers.clear()
        return self.negative_sampler.sample_batch(self.rng, merged[:target])

    def _next_batch_batched(self) -> SampleBatch:
        """The array plane: walks advance in blocks, buffers hold arrays.

        Same relation-homogeneous buffering policy as the looped path,
        but a refill advances ``_walks_per_round`` walks per meta-path
        level with batched alias draws, and the returned batch is a
        :class:`SampleBatch` ready for the vectorised negative sampler
        and loss.
        """
        target = self.config.batch_size
        while True:
            for relation, chunks in self._array_buffers.items():
                if sum(chunk[0].size for chunk in chunks) < target:
                    continue
                src = np.concatenate([chunk[0] for chunk in chunks])
                pos = np.concatenate([chunk[1] for chunk in chunks])
                leftover = ([] if src.size == target
                            else [(src[target:], pos[target:])])
                self._array_buffers[relation] = leftover
                return self.negative_sampler.sample_arrays(
                    self.rng, relation, src[:target], pos[:target])
            for block in self.walker.sample_pair_blocks(
                    self.rng, self._walks_per_round):
                self._array_buffers.setdefault(block.relation, []).append(
                    (block.src_idx, block.dst_idx))

    def train_step(self) -> float:
        """One batch: sample → loss → backward → clip → AdaGrad → clamp κ."""
        cache = self.model.encoder.draw_cache
        if cache is not None and self._steps_done % self.config.plan_refresh == 0:
            cache.clear()
        self._steps_done += 1
        samples = self._next_batch()
        self.optimizer.zero_grad()
        loss = self.model.loss(samples, rng=self.rng)
        loss.backward()
        self.optimizer.step()
        self.model.constrain()
        return loss.item()

    def train(self, steps: Optional[int] = None,
              log_every: int = 0) -> TrainingReport:
        """Run the loop; returns losses and wall-clock time.

        The ``plan_refresh`` draw cache lives only for the duration of
        the loop — it is detached before returning so post-training
        inference (index builds, evaluation) never reuses frozen
        training-time neighbour draws.
        """
        steps = steps if steps is not None else self.config.steps
        if self.config.plan_refresh > 1:
            self.model.encoder.draw_cache = NeighborDrawCache()
        losses: List[float] = []
        start = time.perf_counter()
        try:
            for step in range(steps):
                losses.append(self.train_step())
                if log_every and (step + 1) % log_every == 0:
                    print("step %4d  loss %.4f  |grad| %.3f" %
                          (step + 1, losses[-1],
                           self.optimizer.last_grad_norm))
        finally:
            self.model.encoder.draw_cache = None
        elapsed = time.perf_counter() - start
        return TrainingReport(losses=losses, wall_seconds=elapsed, steps=steps,
                              samples_seen=steps * self.config.batch_size)
