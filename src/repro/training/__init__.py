"""Training engine: optimiser, stability measures, trainer loops.

Implements paper §IV-B-3 (joint triplet training over all relations)
and §V (deployment): AdaGrad on tangent-space parameters, gradient
clipping + learning-rate warm-up (§V-B), and day-level incremental
training with LRU feature exit (§V-C).
"""

from repro.training.optim import AdaGrad, WarmupSchedule, clip_gradients
from repro.training.prefetch import PlanProducer, StepPayload
from repro.training.trainer import Trainer, TrainerConfig, TrainingReport
from repro.training.incremental import IncrementalTrainer

__all__ = [
    "AdaGrad",
    "WarmupSchedule",
    "clip_gradients",
    "PlanProducer",
    "StepPayload",
    "Trainer",
    "TrainerConfig",
    "TrainingReport",
    "IncrementalTrainer",
]
