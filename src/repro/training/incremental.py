"""Day-level incremental training (paper §V-C).

Instead of re-training on a whole multi-day window, the deployed
system inherits the previous day's model and continues training on the
new day's graph only.  Because feature occurrence is long-tailed, an
LRU feature-exit mechanism evicts embedding rows for features unseen
over a horizon, capping model growth.

Here the mechanism is reproduced faithfully at laptop scale: the same
model object is re-bound to each new day's graph (the entity universe
is shared, so embedding tables keep their meaning), trained for a
fraction of the from-scratch step budget, and its feature tables are
swept by :class:`~repro.models.features.LRUFeatureRegistry`.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence

import numpy as np

from repro.data.logs import BehaviorLog
from repro.data.universe import Universe
from repro.graph.builder import build_graph
from repro.graph.hetgraph import HetGraph
from repro.models.amcad import AMCAD
from repro.models.features import LRUFeatureRegistry
from repro.training.trainer import Trainer, TrainerConfig, TrainingReport


@dataclasses.dataclass
class DayResult:
    """Outcome of one incremental day."""

    day: int
    report: TrainingReport
    evicted_features: int
    active_features: int


class IncrementalTrainer:
    """Continues training one model across consecutive daily graphs.

    Parameters
    ----------
    model:
        The model inherited day over day.
    universe:
        Shared entity catalogue (ids stay aligned across days).
    steps_per_day:
        Incremental step budget (a fraction of from-scratch training).
    lru_horizon_days:
        Days a feature may stay unseen before eviction.
    """

    def __init__(self, model: AMCAD, universe: Universe,
                 steps_per_day: int = 20, lru_horizon_days: int = 3,
                 trainer_config: Optional[TrainerConfig] = None):
        self.model = model
        self.universe = universe
        self.steps_per_day = int(steps_per_day)
        self.trainer_config = trainer_config or TrainerConfig()
        self.registry = LRUFeatureRegistry(horizon_steps=lru_horizon_days)
        for embedding in model.encoder.embeddings.values():
            for table in embedding.tables.values():
                self.registry.register(table)
        self.history: List[DayResult] = []

    def _touch_day_features(self, graph: HetGraph) -> None:
        """Mark features of active (connected) nodes as seen today."""
        for node_type, embedding in self.model.encoder.embeddings.items():
            degree = graph.degree(node_type)
            active = np.flatnonzero(degree > 0)
            fields = graph.features[node_type]
            for (m, field), table in embedding.tables.items():
                if m != 0:
                    # all subspace copies of a field share the id stream;
                    # touching once per field is enough, but tables are
                    # registered per subspace so touch each
                    pass
                self.registry.touch(table, np.asarray(fields[field])[active])

    def train_day(self, log: BehaviorLog) -> DayResult:
        """Inherit the model and continue training on one day's graph."""
        graph = build_graph(self.universe, [log])
        self.model.graph = graph
        self.model.encoder.graph = graph
        config = dataclasses.replace(self.trainer_config,
                                     steps=self.steps_per_day,
                                     warmup_steps=0)
        trainer = Trainer(self.model, config)
        report = trainer.train()
        self._touch_day_features(graph)
        self.registry.advance()
        evicted = self.registry.evict_stale()
        result = DayResult(day=log.day, report=report,
                           evicted_features=evicted,
                           active_features=self.registry.active_rows)
        self.history.append(result)
        return result

    def train_days(self, logs: Sequence[BehaviorLog]) -> List[DayResult]:
        return [self.train_day(log) for log in logs]
