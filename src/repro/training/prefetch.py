"""Prefetching training plane: the sampling phase off the main process.

The profile that motivates this module: at ``gcn_layers=2`` a training
step spends ~7% of its wall building the :class:`SampleBatch` and the
two :class:`EncodePlan` objects and ~93% in forward/backward — but the
7% runs serially *before* the tape work, on the same core.  Both
artefacts were designed as plain-array contracts precisely so an
out-of-process producer could emit them; this module is that producer.

Three pieces:

- :func:`build_step_payload` — the per-step unit of work, pure numpy:
  draw a relation-homogeneous batch (meta-path walks + array-native
  negatives) and build one encode plan per endpoint role.  The step's
  RNG is derived from ``SeedSequence(entropy=(seed, step))``, so the
  payload for step ``i`` is a function of ``(seed, i)`` alone — the
  payload *stream* is bit-identical no matter how many workers produce
  it (the determinism contract the tests pin down).
- :class:`ProducerState` — the picklable snapshot (walker + negative
  sampler + plan geometry) a worker needs; one blob is pickled once and
  shipped to every worker at spawn.
- :class:`PlanProducer` — the double-buffered pool.  ``num_workers``
  spawn-context processes each autonomously generate the strided steps
  ``w, w+W, w+2W, …`` and push payloads into a bounded queue
  (``maxsize=depth``, the back-pressure that makes it double-buffered
  rather than unbounded); the consumer reorders to step order and
  tracks how long it blocked (``wait_seconds``, the overlap
  diagnostic).  ``num_workers=0`` runs the same code inline — the
  parity mode tests compare against.

``plan_refresh`` interaction: draw-cache reuse is owned by the
producer, one :class:`NeighborDrawCache` per worker.  A worker only
sees every ``W``-th step, so a refresh window shorter than the worker
count can never produce a cache hit; that combination raises
``ValueError`` instead of silently resampling every plan.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import pickle
import queue as queue_lib
import time
import traceback
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.graph.metapath import MetaPathWalker
from repro.graph.sampling import NegativeSampler, SampleBatch
from repro.models.plan import EncodePlan, NeighborDrawCache, build_encode_plan
from repro.testing import faults as fault_harness
from repro.testing.faults import fault_point

#: per-payload refill rounds before settling for the fullest buffer
#: (mirrors the trainer's batched plane, which keeps refilling across
#: steps; a stateless payload has to bound the search per step)
MAX_REFILL_ROUNDS = 64


@dataclasses.dataclass
class StepPayload:
    """One step's producer output: the batch plus one plan per role.

    ``plans`` is keyed ``"source"`` / ``"target"`` — the role-keyed
    contract ``AMCAD.loss`` resolves first, required because same-type
    relations (q2q/i2i) need *distinct* draws per endpoint.
    """

    step: int
    batch: SampleBatch
    plans: Dict[str, EncodePlan]


@dataclasses.dataclass
class _WorkerFailure:
    """A worker's exception, shipped through the queue as data."""

    worker_id: int
    message: str


def step_rng(seed: int, step: int) -> np.random.Generator:
    """The per-step generator: a pure function of ``(seed, step)``.

    Seeding each step independently (instead of advancing one stream)
    is what decouples the payload stream from the producer topology —
    worker ``w`` of ``W`` can generate step ``i`` without having
    generated steps ``0 … i-1``.
    """
    return np.random.default_rng(
        np.random.SeedSequence(entropy=(int(seed), int(step))))


class ProducerState:
    """Everything payload building needs, picklable as one blob.

    The walker and negative sampler both reference the same
    :class:`~repro.graph.hetgraph.HetGraph`; pickle memoisation ships
    the graph once.  ``draw_cache`` (present when ``plan_refresh > 1``)
    is per-state, hence per-worker — the producer owns reuse.
    """

    def __init__(self, walker: MetaPathWalker, sampler: NegativeSampler, *,
                 batch_size: int, gcn_layers: int, neighbor_samples: int,
                 seed: int, plan_refresh: int = 1,
                 walks_per_round: Optional[int] = None):
        self.walker = walker
        self.sampler = sampler
        self.graph = walker.graph
        self.batch_size = int(batch_size)
        self.gcn_layers = int(gcn_layers)
        self.neighbor_samples = int(neighbor_samples)
        self.seed = int(seed)
        self.plan_refresh = int(plan_refresh)
        self.walks_per_round = int(
            walks_per_round if walks_per_round is not None
            else max(len(walker.meta_paths), 3 * self.batch_size))
        self.draw_cache: Optional[NeighborDrawCache] = (
            NeighborDrawCache() if self.plan_refresh > 1 else None)
        self._window: Optional[int] = None


def _sample_step_batch(state: ProducerState,
                       rng: np.random.Generator) -> SampleBatch:
    """One relation-homogeneous batch, built statelessly from ``rng``.

    The trainer's batched plane keeps per-relation buffers alive across
    steps and serves whichever relation fills first, so relations train
    at a rate proportional to their pair-production rate.  A stateless
    payload restarts from empty, where "first to fill" would degenerate
    to *always the most productive relation* — so instead the step's
    relation is drawn from the per-step ``rng`` with probability
    proportional to the pair counts of one walk round: the same
    long-run relation mix, decided independently per step.  Refills
    then top the chosen relation up to ``batch_size`` (bounded by
    :data:`MAX_REFILL_ROUNDS`; a rare relation that cannot fill serves
    what it has, mirroring the sync plane's tail behaviour).
    """
    target = state.batch_size
    buffers: Dict[object, List[Tuple[np.ndarray, np.ndarray]]] = {}

    def refill() -> None:
        for block in state.walker.sample_pair_blocks(rng,
                                                     state.walks_per_round):
            buffers.setdefault(block.relation, []).append(
                (block.src_idx, block.dst_idx))

    rounds = 0
    while not buffers and rounds < MAX_REFILL_ROUNDS:
        refill()
        rounds += 1
    if not buffers:
        raise RuntimeError("meta-path walker produced no pairs in %d walk "
                           "rounds" % MAX_REFILL_ROUNDS)
    # sorted for a deterministic order; weights ∝ this round's pair counts
    relations = sorted(buffers, key=lambda r: r.value)
    weights = np.array([sum(chunk[0].size for chunk in buffers[r])
                        for r in relations], dtype=np.float64)
    relation = relations[int(rng.choice(len(relations),
                                        p=weights / weights.sum()))]
    while (sum(chunk[0].size for chunk in buffers[relation]) < target
           and rounds < MAX_REFILL_ROUNDS):
        refill()
        rounds += 1
    src = np.concatenate([chunk[0] for chunk in buffers[relation]])
    pos = np.concatenate([chunk[1] for chunk in buffers[relation]])
    return state.sampler.sample_arrays(rng, relation, src[:target],
                                       pos[:target])


def build_step_payload(state: ProducerState, step: int) -> StepPayload:
    """Sample step ``step``'s batch and build its per-role encode plans.

    Pure numpy end to end.  The target-role plan reads the state's draw
    cache (when ``plan_refresh > 1``), cleared whenever the step enters
    a new refresh window; the source-role plan always draws fresh so
    cached draws never couple the two endpoints of a same-type relation
    (see ``AMCAD._encode_group_frontier``).
    """
    cache = state.draw_cache
    if cache is not None:
        window = step // state.plan_refresh
        if window != state._window:
            cache.clear()
            state._window = window
    rng = step_rng(state.seed, step)
    batch = _sample_step_batch(state, rng)
    relation = batch.relation
    source_plan = build_encode_plan(
        state.graph, relation.source_type, batch.src_idx,
        state.gcn_layers, state.neighbor_samples, rng)
    merged = np.concatenate([batch.pos_idx, batch.neg_idx.ravel()])
    target_plan = build_encode_plan(
        state.graph, relation.target_type, merged,
        state.gcn_layers, state.neighbor_samples, rng, draw_cache=cache)
    return StepPayload(step=step, batch=batch,
                       plans={"source": source_plan, "target": target_plan})


def _worker_main(blob: bytes, worker_id: int, num_workers: int,
                 total_steps: int, out_queue, stop, ready,
                 start_step: int = 0, fault_plan=()) -> None:
    """Worker loop: unpickle the snapshot, produce the strided steps.

    ``ready`` is set after the snapshot is restored, so the consumer
    can exclude spawn/unpickle start-up from its throughput window.
    Exceptions ship through the queue as :class:`_WorkerFailure`
    payloads instead of dying silently.

    The worker produces the steps of its stride class (``step %
    num_workers == worker_id``) starting at ``start_step`` — the resume
    offset of a checkpointed run, or the consumer's current step when
    this worker replaces a crashed one.  ``fault_plan`` re-installs the
    parent's fault specs in the spawned process; the
    ``"prefetch.worker.start"`` / ``"prefetch.worker"`` fault points
    simulate start-up and mid-production crashes (``kill`` mode dies
    with :data:`~repro.testing.faults.KILL_EXIT_CODE`).
    """
    try:
        if fault_plan:
            fault_harness.install_plan(
                fault_harness.FaultSpec.from_dict(dict(spec))
                for spec in fault_plan)
        state = pickle.loads(blob)
        fault_point("prefetch.worker.start", worker=worker_id)
        ready.set()
        first = start_step + ((worker_id - start_step) % num_workers)
        for step in range(first, total_steps, num_workers):
            fault_point("prefetch.worker", worker=worker_id, step=step)
            payload = build_step_payload(state, step)
            while not stop.is_set():
                try:
                    out_queue.put((step, payload), timeout=0.1)
                    break
                except queue_lib.Full:
                    continue
            if stop.is_set():
                return
    except Exception:
        ready.set()   # never leave the consumer hanging on the handshake
        try:
            out_queue.put((-1, _WorkerFailure(worker_id,
                                              traceback.format_exc())),
                          timeout=5.0)
        except queue_lib.Full:      # pragma: no cover - queue wedged
            pass


class PlanProducer:
    """Double-buffered multi-process producer of :class:`StepPayload`.

    Use as a context manager; iterate to consume payloads in step
    order::

        with PlanProducer(walker, sampler, total_steps=120,
                          batch_size=64, gcn_layers=2,
                          neighbor_samples=4, seed=0,
                          num_workers=2) as producer:
            for payload in producer:
                loss = model.loss(payload.batch, plans=payload.plans)

    ``num_workers=0`` produces inline on the calling process — same
    payloads, no processes — which is the parity mode the determinism
    tests compare a worker pool against.  ``wait_seconds`` accumulates
    the time the consumer spent blocked on the queue; with the pool
    keeping up it stays near zero (full overlap).
    """

    def __init__(self, walker: MetaPathWalker, sampler: NegativeSampler, *,
                 total_steps: int, batch_size: int, gcn_layers: int,
                 neighbor_samples: int, seed: int, num_workers: int = 0,
                 depth: int = 2, plan_refresh: int = 1,
                 walks_per_round: Optional[int] = None,
                 start_timeout: float = 120.0, start_step: int = 0,
                 max_respawns: int = 4):
        if num_workers < 0:
            raise ValueError("num_workers must be >= 0, got %d" % num_workers)
        if depth < 1:
            raise ValueError("depth must be >= 1, got %d" % depth)
        if total_steps < 0:
            raise ValueError("total_steps must be >= 0, got %d" % total_steps)
        if not 0 <= start_step <= total_steps:
            raise ValueError("start_step must be in [0, total_steps=%d], "
                             "got %d" % (total_steps, start_step))
        if max_respawns < 0:
            raise ValueError("max_respawns must be >= 0, got %d"
                             % max_respawns)
        if plan_refresh < 1:
            raise ValueError("plan_refresh must be >= 1, got %d"
                             % plan_refresh)
        if plan_refresh > 1 and 1 <= num_workers and plan_refresh <= num_workers:
            raise ValueError(
                "plan_refresh=%d cannot reuse draws across %d prefetch "
                "workers: each worker produces every %d-th step, so a "
                "refresh window of %d steps never revisits a worker's "
                "cache (every plan would silently miss). Use plan_refresh "
                "> num_workers, or num_workers=0."
                % (plan_refresh, num_workers, num_workers, plan_refresh))
        self.total_steps = int(total_steps)
        self.num_workers = int(num_workers)
        self.depth = int(depth)
        self.start_timeout = float(start_timeout)
        self.start_step = int(start_step)
        self.max_respawns = int(max_respawns)
        self._state = ProducerState(
            walker, sampler, batch_size=batch_size, gcn_layers=gcn_layers,
            neighbor_samples=neighbor_samples, seed=seed,
            plan_refresh=plan_refresh, walks_per_round=walks_per_round)
        #: consumer-side blocked time (seconds); the overlap diagnostic
        self.wait_seconds = 0.0
        #: worker crashes observed and replacements spawned (see
        #: :meth:`producer_stats`); ``respawn_events`` records one dict
        #: per replacement for the stage report
        self.worker_deaths = 0
        self.worker_respawns = 0
        self.respawn_events: List[Dict[str, int]] = []
        # the active fault plan rides to every worker; spawned processes
        # start with an empty injector otherwise
        self._fault_plan = [spec.to_dict()
                            for spec in fault_harness.active_specs()]
        self._procs: list = []
        self._worker_ids: List[int] = []
        self._blob: Optional[bytes] = None
        self._ctx = None
        self._queue = None
        self._stop = None
        self._started = False

    # -- lifecycle ----------------------------------------------------------

    def _spawn(self, worker_id: int, start_step: int, fault_plan):
        """Start one worker process; returns ``(proc, ready_event)``."""
        ready = self._ctx.Event()
        proc = self._ctx.Process(
            target=_worker_main,
            args=(self._blob, worker_id, self.num_workers, self.total_steps,
                  self._queue, self._stop, ready, start_step,
                  list(fault_plan)),
            daemon=True)
        proc.start()
        return proc, ready

    def _await_ready(self, worker_id: int, proc, ready) -> None:
        """Wait out one handshake, failing fast on a dead worker.

        A worker that dies before setting ``ready`` (spawn crash,
        ``"prefetch.worker.start"`` kill fault) surfaces as a clear
        error with its exit code instead of a silent ``start_timeout``
        wait.
        """
        deadline = time.perf_counter() + self.start_timeout
        while not ready.wait(timeout=0.05):
            if not proc.is_alive():
                self.close()
                raise RuntimeError(
                    "prefetch worker %d died during the ready handshake "
                    "(exit code %s)" % (worker_id, proc.exitcode))
            if time.perf_counter() >= deadline:
                self.close()
                raise RuntimeError(
                    "prefetch worker %d did not come up within %.0fs"
                    % (worker_id, self.start_timeout))

    def start(self) -> None:
        """Spawn the pool and wait for every worker's ready handshake."""
        if self._started or self.num_workers == 0:
            self._started = True
            return
        self._ctx = multiprocessing.get_context("spawn")
        self._blob = pickle.dumps(self._state,
                                  protocol=pickle.HIGHEST_PROTOCOL)
        self._queue = self._ctx.Queue(maxsize=self.depth)
        self._stop = self._ctx.Event()
        spawned = []
        for worker_id in range(self.num_workers):
            proc, ready = self._spawn(worker_id, self.start_step,
                                      self._fault_plan)
            self._procs.append(proc)
            self._worker_ids.append(worker_id)
            spawned.append((worker_id, proc, ready))
        self._started = True
        for worker_id, proc, ready in spawned:
            self._await_ready(worker_id, proc, ready)

    def close(self) -> None:
        """Stop workers, drain the queue, join; terminate stragglers."""
        if self._stop is not None:
            self._stop.set()
        if self._queue is not None:
            # unblock workers stuck in put() on the bounded queue
            try:
                while True:
                    self._queue.get_nowait()
            except (queue_lib.Empty, OSError, ValueError):
                pass
        for proc in self._procs:
            proc.join(timeout=5.0)
        for proc in self._procs:
            if proc.is_alive():     # pragma: no cover - defensive
                proc.terminate()
                proc.join(timeout=1.0)
        if self._queue is not None:
            self._queue.close()
            self._queue.cancel_join_thread()
            self._queue = None
        self._procs = []
        self._worker_ids = []
        self._stop = None

    def __enter__(self) -> "PlanProducer":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- crash recovery ------------------------------------------------------

    def producer_stats(self) -> Dict[str, object]:
        """Worker-death and respawn counters for reports/benchmarks."""
        return {
            "worker_deaths": self.worker_deaths,
            "worker_respawns": self.worker_respawns,
            "respawn_events": [dict(event) for event in self.respawn_events],
        }

    def _reap_and_respawn(self, at_step: int) -> None:
        """Replace crashed workers so the run continues.

        A worker that exited nonzero (e.g. SIGKILL, or a ``kill``-mode
        fault) is replaced by a fresh process producing its stride class
        from the consumer's current step — payloads are pure
        ``(seed, step)``, so the replacement regenerates exactly the
        steps the dead worker never delivered (an already-queued
        duplicate is harmless: the reorder buffer just overwrites).
        ``kill``-mode fault specs are dropped from the replacement's
        plan, otherwise an unbounded kill fault would just shoot every
        replacement on arrival.  More than ``max_respawns`` total
        deaths raise instead.
        """
        for slot, proc in enumerate(self._procs):
            if proc.is_alive() or proc.exitcode in (0, None):
                continue
            worker_id = self._worker_ids[slot]
            exitcode = proc.exitcode
            self.worker_deaths += 1
            if self.worker_deaths > self.max_respawns:
                raise RuntimeError(
                    "prefetch worker %d died (exit code %s) and the "
                    "respawn budget (%d) is spent"
                    % (worker_id, exitcode, self.max_respawns))
            survivable = [spec for spec in self._fault_plan
                          if spec.get("mode") != "kill"]
            replacement, ready = self._spawn(worker_id, at_step, survivable)
            self._procs[slot] = replacement
            self._await_ready(worker_id, replacement, ready)
            self.worker_respawns += 1
            self.respawn_events.append({"worker": worker_id,
                                        "exit_code": int(exitcode),
                                        "at_step": int(at_step)})

    # -- consumption --------------------------------------------------------

    def __iter__(self) -> Iterator[StepPayload]:
        """Payloads in step order, reordered from the workers' stream."""
        if self.num_workers == 0:
            for step in range(self.start_step, self.total_steps):
                yield build_step_payload(self._state, step)
            return
        if not self._started:
            raise RuntimeError("PlanProducer not started; use it as a "
                               "context manager (or call start())")
        pending: Dict[int, StepPayload] = {}
        for step in range(self.start_step, self.total_steps):
            while step not in pending:
                began = time.perf_counter()
                try:
                    got_step, payload = self._queue.get(timeout=1.0)
                except queue_lib.Empty:
                    self.wait_seconds += time.perf_counter() - began
                    self._reap_and_respawn(step)
                    if not any(proc.is_alive() for proc in self._procs):
                        raise RuntimeError(
                            "all prefetch workers exited before step %d "
                            "arrived" % step)
                    continue
                self.wait_seconds += time.perf_counter() - began
                if isinstance(payload, _WorkerFailure):
                    raise RuntimeError(
                        "prefetch worker %d failed:\n%s"
                        % (payload.worker_id, payload.message))
                pending[got_step] = payload
            yield pending.pop(step)
