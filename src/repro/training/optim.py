"""Optimiser and the numerical-stability measures of paper §V-B.

The paper trains with *vanilla AdaGrad* because all parameters live in
tangent spaces (the manifold structure is applied by exp-maps inside
the forward pass, so no Riemannian optimiser is needed), and it
stabilises curved training with gradient clipping and learning-rate
warm-up — both implemented here.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from repro.autodiff.tensor import Parameter


def clip_gradients(parameters: Iterable[Parameter],
                   max_norm: float) -> float:
    """Scale all gradients so their global L2 norm is ≤ ``max_norm``.

    Returns the pre-clip global norm (useful for monitoring the
    gradient explosions §V-B warns about).
    """
    params = [p for p in parameters if p.grad is not None]
    if not params:
        return 0.0
    total = float(np.sqrt(np.sum([float((p.grad ** 2).sum()) for p in params])))
    if max_norm > 0 and total > max_norm:
        scale = max_norm / (total + 1e-12)
        for p in params:
            p.grad *= scale
    return total


class WarmupSchedule:
    """Linear learning-rate warm-up followed by a constant rate."""

    def __init__(self, base_rate: float, warmup_steps: int):
        self.base_rate = float(base_rate)
        self.warmup_steps = max(int(warmup_steps), 0)

    def rate(self, step: int) -> float:
        if self.warmup_steps == 0 or step >= self.warmup_steps:
            return self.base_rate
        return self.base_rate * (step + 1) / self.warmup_steps


class AdaGrad:
    """Vanilla AdaGrad over a fixed parameter list.

    Parameters
    ----------
    parameters:
        Trainable tensors (materialised once — the set must be stable).
    learning_rate:
        Base step size (paper grid-searches to 1e-2).
    warmup_steps:
        Linear warm-up horizon (paper §V-B).
    clip_norm:
        Global gradient-norm clip; 0 disables.
    epsilon:
        Accumulator damping term.
    """

    def __init__(self, parameters: Iterable[Parameter],
                 learning_rate: float = 1e-2, warmup_steps: int = 0,
                 clip_norm: float = 5.0, epsilon: float = 1e-8):
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("no parameters to optimise")
        self.schedule = WarmupSchedule(learning_rate, warmup_steps)
        self.clip_norm = float(clip_norm)
        self.epsilon = float(epsilon)
        self.step_count = 0
        self._accumulators = [np.zeros_like(p.data) for p in self.parameters]
        self.last_grad_norm = 0.0

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()

    def step(self) -> None:
        """Apply one update from accumulated gradients."""
        self.last_grad_norm = clip_gradients(self.parameters, self.clip_norm)
        rate = self.schedule.rate(self.step_count)
        for param, accumulator in zip(self.parameters, self._accumulators):
            if param.grad is None:
                continue
            accumulator += param.grad ** 2
            param.data -= rate * param.grad / (np.sqrt(accumulator) + self.epsilon)
        self.step_count += 1

    @property
    def num_parameters(self) -> int:
        return int(np.sum([p.size for p in self.parameters]))
