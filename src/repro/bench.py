"""Shared harness for the paper-reproduction benchmarks.

Each ``benchmarks/bench_*.py`` regenerates one table or figure of the
paper.  This module centralises:

- the benchmark dataset (one simulated platform, cached per process);
- the standard train-then-evaluate pipeline for a named model;
- result formatting/persistence (every bench writes a text report next
  to the benchmark code under ``benchmarks/results/``).

Scale control: the environment variable ``REPRO_BENCH_SCALE`` (float,
default 1.0) multiplies training step counts, so ``REPRO_BENCH_SCALE=0.2
pytest benchmarks/`` gives a fast smoke pass and ``=3`` a higher-fidelity
run.
"""

from __future__ import annotations

import dataclasses
import functools
import json
import os
import pathlib
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data import SimulatorConfig, SponsoredSearchSimulator
from repro.data.logs import BehaviorLog, merge_logs
from repro.evaluation import (
    evaluate_ranking,
    ground_truth_from_log,
    next_auc,
)
from repro.graph import build_graph
from repro.graph.hetgraph import HetGraph
from repro.graph.schema import NodeType, Relation
from repro.models import make_baseline, make_model
from repro.retrieval import IndexSet
from repro.training import Trainer, TrainerConfig

RESULTS_DIR = pathlib.Path(__file__).resolve().parents[2] / "benchmarks" / "results"

#: Benchmark-wide model geometry (the paper: M=2 subspaces, 120 dims
#: total on 100M nodes; here M=2 x 8 dims on ~3.4k nodes).
NUM_SUBSPACES = 2
SUBSPACE_DIM = 4
TRAIN_STEPS = 200
BATCH_SIZE = 64
LEARNING_RATE = 0.05
EVAL_QUERIES = 150
AUC_SAMPLES = 400


def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def scaled_steps(steps: int) -> int:
    return max(10, int(round(steps * bench_scale())))


@dataclasses.dataclass
class BenchDataset:
    """The simulated platform shared by all benches."""

    simulator: SponsoredSearchSimulator
    logs: List[BehaviorLog]
    train_graph: HetGraph
    next_graph: HetGraph
    truth_items: Dict[int, List[int]]
    truth_ads: Dict[int, List[int]]

    @property
    def universe(self):
        return self.simulator.universe


@functools.lru_cache(maxsize=2)
def load_dataset(days: int = 2, seed: int = 3) -> BenchDataset:
    """Build (and cache) the benchmark dataset.

    Day 0 is the training day (paper: 1-day logs for offline eval);
    day 1 is the next-day evaluation graph.
    """
    simulator = SponsoredSearchSimulator(SimulatorConfig(seed=seed))
    logs = simulator.simulate_days(days)
    train_graph = build_graph(simulator.universe, logs[:1])
    next_graph = build_graph(simulator.universe, logs[1:2])
    return BenchDataset(
        simulator=simulator,
        logs=logs,
        train_graph=train_graph,
        next_graph=next_graph,
        truth_items=ground_truth_from_log(logs[1], NodeType.ITEM),
        truth_ads=ground_truth_from_log(logs[1], NodeType.AD),
    )


@dataclasses.dataclass
class ModelResult:
    """Table VI row: metrics for one trained model."""

    name: str
    next_auc: float
    train_seconds: float
    q2i: Dict[str, float]
    q2a: Dict[str, float]

    def row(self) -> str:
        return ("%-14s auc %6.2f  time %6.1fs  "
                "Q2I hr@10 %5.2f hr@100 %5.2f ndcg@100 %5.2f  "
                "Q2A hr@10 %5.2f hr@100 %5.2f ndcg@100 %5.2f" % (
                    self.name, self.next_auc, self.train_seconds,
                    self.q2i["hr@10"], self.q2i["hr@100"],
                    self.q2i["ndcg@100"],
                    self.q2a["hr@10"], self.q2a["hr@100"],
                    self.q2a["ndcg@100"]))


def train_geometric_model(name: str, data: BenchDataset, *,
                          steps: Optional[int] = None, seed: int = 1,
                          num_subspaces: int = NUM_SUBSPACES,
                          subspace_dim: int = SUBSPACE_DIM,
                          **model_overrides):
    """Train one AMCAD-family model on the benchmark graph."""
    model = make_model(name, data.train_graph, num_subspaces=num_subspaces,
                       subspace_dim=subspace_dim, seed=seed,
                       **model_overrides)
    config = TrainerConfig(steps=scaled_steps(steps or TRAIN_STEPS),
                           batch_size=BATCH_SIZE,
                           learning_rate=LEARNING_RATE, seed=seed)
    report = Trainer(model, config).train()
    return model, report


def evaluate_geometric_model(model, data: BenchDataset,
                             train_seconds: float,
                             name: str) -> ModelResult:
    """Standard Table VI evaluation: Next AUC + Q2I/Q2A rankings."""
    index_set = IndexSet(model, top_k=300).build(
        [Relation.Q2I, Relation.Q2A])
    q2i = evaluate_ranking(
        lambda q, k: index_set[Relation.Q2I].lookup_batch(q, k)[0],
        data.truth_items, ks=(10, 100, 300), max_queries=EVAL_QUERIES)
    q2a = evaluate_ranking(
        lambda q, k: index_set[Relation.Q2A].lookup_batch(q, k)[0],
        data.truth_ads, ks=(10, 100, 300), max_queries=EVAL_QUERIES)
    auc = next_auc(model.similarity, data.next_graph,
                   num_samples=AUC_SAMPLES)
    return ModelResult(name=name, next_auc=auc, train_seconds=train_seconds,
                       q2i=q2i.row(), q2a=q2a.row())


def run_geometric_model(name: str, data: BenchDataset, *,
                        steps: Optional[int] = None, seed: int = 1,
                        **overrides) -> ModelResult:
    model, report = train_geometric_model(name, data, steps=steps, seed=seed,
                                          **overrides)
    return evaluate_geometric_model(model, data, report.wall_seconds, name)


def run_skipgram_baseline(name: str, data: BenchDataset, *,
                          num_pairs: int = 30000, seed: int = 1,
                          dim: Optional[int] = None) -> ModelResult:
    """Train + evaluate a walk baseline with the same metric suite."""
    dim = dim or NUM_SUBSPACES * SUBSPACE_DIM
    model = make_baseline(name, data.train_graph, dim=dim, seed=seed)
    start = time.perf_counter()
    model.train(int(num_pairs * bench_scale()))
    train_seconds = time.perf_counter() - start

    def make_retrieve(target_type):
        q_emb = model.embed(NodeType.QUERY)
        t_emb = model.embed(target_type)

        def retrieve(queries, k):
            scores = q_emb[np.asarray(queries)] @ t_emb.T
            return np.argsort(-scores, axis=1)[:, :k]

        return retrieve

    q2i = evaluate_ranking(make_retrieve(NodeType.ITEM), data.truth_items,
                           ks=(10, 100, 300), max_queries=EVAL_QUERIES)
    q2a = evaluate_ranking(make_retrieve(NodeType.AD), data.truth_ads,
                           ks=(10, 100, 300), max_queries=EVAL_QUERIES)
    auc = next_auc(model.similarity, data.next_graph,
                   num_samples=AUC_SAMPLES)
    return ModelResult(name=name, next_auc=auc, train_seconds=train_seconds,
                       q2i=q2i.row(), q2a=q2a.row())


def write_report(filename: str, title: str, lines: Sequence[str]) -> pathlib.Path:
    """Persist a bench report and echo it to stdout."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / filename
    body = "\n".join(["# %s" % title, ""] + list(lines)) + "\n"
    path.write_text(body)
    print("\n" + body)
    return path


def write_json_report(filename: str, payload: Dict) -> pathlib.Path:
    """Persist a machine-readable bench result next to the text reports."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / filename
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
