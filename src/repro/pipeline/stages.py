"""Composable pipeline stages (simulate → graph → train → index → serve → eval).

Each stage reads and extends one shared :class:`PipelineContext` and
returns a JSON-safe info dict for the run report.  Stages that produce
shippable artifacts (checkpoint, indices) persist them through the
context's :class:`~repro.pipeline.artifacts.ArtifactStore` when one is
attached, so a later process can reload without retraining.

Data-bearing context fields (``simulator``/``logs``/graphs) are only
computed when absent, so callers sweeping many models over one dataset
can share them across runs via :meth:`PipelineContext.fork_data`.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional

import numpy as np

from repro.data.synthetic import SponsoredSearchSimulator
from repro.evaluation import (
    evaluate_ranking,
    ground_truth_from_log,
    next_auc,
)
from repro.evaluation.ab_test import ABTestConfig, run_ab_test
from repro.graph.builder import GraphBuilder
from repro.graph.schema import NodeType, Relation
from repro.models.amcad import make_model
from repro.pipeline.artifacts import ArtifactStore
from repro.pipeline.config import PipelineConfig
from repro.retrieval.index import IndexSet
from repro.retrieval.two_layer import TwoLayerRetriever
from repro.serving.admission import AdmissionController
from repro.serving.engine import ServingEngine
from repro.serving.simulator import ServingSimulator
from repro.serving.traffic import TrafficGenerator
from repro.training.trainer import Trainer


@dataclasses.dataclass
class PipelineContext:
    """Everything the stages produce, in dependency order."""

    config: PipelineConfig
    store: Optional[ArtifactStore] = None

    # data / graph
    simulator: Optional[SponsoredSearchSimulator] = None
    logs: Optional[list] = None
    train_graph: Optional[Any] = None
    eval_graph: Optional[Any] = None

    # training
    model: Optional[Any] = None
    training_report: Optional[Any] = None
    control_model: Optional[Any] = None

    # indexing
    index_set: Optional[IndexSet] = None
    control_index_set: Optional[IndexSet] = None

    # serving
    retriever: Optional[TwoLayerRetriever] = None
    engine: Optional[ServingEngine] = None
    fleet_workers: Optional[int] = None

    def fork_data(self, config: PipelineConfig) -> "PipelineContext":
        """A fresh context reusing this one's dataset and graphs.

        Lets a benchmark sweep many model configs over one simulated
        platform without re-simulating; the caller must keep the data
        and graph sections of ``config`` identical.  The store comes
        from the :class:`Pipeline` the context is handed to.
        """
        return PipelineContext(config=config,
                               simulator=self.simulator, logs=self.logs,
                               train_graph=self.train_graph,
                               eval_graph=self.eval_graph)

    def make_retriever(self, index_set: IndexSet) -> TwoLayerRetriever:
        serving = self.config.serving
        return TwoLayerRetriever(index_set, expansion_k=serving.expansion_k,
                                 ads_per_key=serving.ads_per_key)


class Stage:
    """One step of the lifecycle; subclasses set ``name`` and ``run``."""

    name = "stage"

    def run(self, ctx: PipelineContext) -> Dict[str, Any]:
        raise NotImplementedError


class DataStage(Stage):
    """Simulate the sponsored-search platform and its daily logs."""

    name = "data"

    def run(self, ctx: PipelineContext) -> Dict[str, Any]:
        cfg = ctx.config.data
        if ctx.simulator is None:
            ctx.simulator = SponsoredSearchSimulator(cfg.simulator_config())
            ctx.logs = ctx.simulator.simulate_days(cfg.days)
        universe = ctx.simulator.universe
        counts = universe.num_nodes()
        sessions = [len(log) for log in ctx.logs]
        return {
            "days": cfg.days,
            "train_days": cfg.train_days,
            "sessions_per_day": sessions,
            "num_queries": counts[NodeType.QUERY],
            "num_items": counts[NodeType.ITEM],
            "num_ads": counts[NodeType.AD],
            "summary": "%d days (%d sessions), %d queries / %d items / %d ads"
                       % (cfg.days, sum(sessions), counts[NodeType.QUERY],
                          counts[NodeType.ITEM], counts[NodeType.AD]),
        }


class GraphStage(Stage):
    """Build the training graph and the held-out next-day graph."""

    name = "graph"

    def run(self, ctx: PipelineContext) -> Dict[str, Any]:
        data_cfg = ctx.config.data
        if ctx.train_graph is None:
            ctx.train_graph = self._build(ctx, ctx.logs[:data_cfg.train_days])
            if data_cfg.eval_days:
                ctx.eval_graph = self._build(ctx,
                                             ctx.logs[data_cfg.train_days:])
        train_edges = ctx.train_graph.num_edges()
        eval_edges = (ctx.eval_graph.num_edges()
                      if ctx.eval_graph is not None else 0)
        return {
            "train_edges": train_edges,
            "eval_edges": eval_edges,
            "summary": "train graph %d edges%s"
                       % (train_edges,
                          "; eval graph %d edges" % eval_edges
                          if ctx.eval_graph is not None else ""),
        }

    @staticmethod
    def _build(ctx: PipelineContext, logs):
        graph_cfg = ctx.config.graph
        builder = GraphBuilder(
            ctx.simulator.universe,
            semantic_threshold=graph_cfg.semantic_threshold,
            max_semantic_degree=graph_cfg.max_semantic_degree)
        return builder.add_logs(logs).build()


class TrainStage(Stage):
    """Train the configured model (and the A/B control channel, if any)."""

    name = "train"

    def run(self, ctx: PipelineContext) -> Dict[str, Any]:
        cfg = ctx.config
        # only the primary model checkpoints for resume (the control
        # channel is retrained from scratch on a crash — it shares the
        # store and two interleaved checkpoints would clobber each other)
        checkpoint_path = (ctx.store.path(ArtifactStore.CHECKPOINT)
                           if ctx.store is not None
                           and cfg.training.checkpoint_every > 0 else None)
        ctx.model, ctx.training_report = self._train(
            ctx, cfg.model.name, cfg.model.seed,
            checkpoint_path=checkpoint_path)
        if ctx.store is not None:
            from repro.io import save_model
            save_model(ctx.model, ctx.store.path(ArtifactStore.MODEL))
        report = ctx.training_report
        info = {
            "model": cfg.model.name,
            "steps": report.steps,
            "samples_seen": report.samples_seen,
            "train_seconds": report.wall_seconds,
            "losses": [float(x) for x in report.losses],
            "final_loss": report.final_loss,
            "mean_tail_loss": report.mean_tail_loss,
            "prefetch_workers": cfg.training.prefetch_workers,
            "accumulate_steps": cfg.training.accumulate_steps,
            "backward_depth": cfg.training.backward_depth,
            "summary": "%s: %d steps, final loss %.3f (tail mean %.3f)"
                       % (cfg.model.name, report.steps, report.final_loss,
                          report.mean_tail_loss),
        }
        if cfg.training.prefetch_workers > 0:
            info["prefetch_wait_seconds"] = report.prefetch_wait_seconds
            info["prefetch_overlap_fraction"] = report.overlap_fraction
            info["summary"] += ", prefetch overlap %.0f%%" % (
                100.0 * report.overlap_fraction)
        if cfg.training.checkpoint_every > 0:
            info["checkpoint_every"] = cfg.training.checkpoint_every
            info["resumed_from_step"] = report.resumed_from_step
            info["checkpoints_written"] = report.checkpoints_written
            if report.resumed_from_step:
                info["summary"] += " (resumed from step %d)" % (
                    report.resumed_from_step)
        if report.worker_deaths or report.worker_respawns:
            info["worker_deaths"] = report.worker_deaths
            info["worker_respawns"] = report.worker_respawns
            info["summary"] += ", %d worker death(s)" % report.worker_deaths
        if cfg.eval.enabled and cfg.eval.ab_control:
            ctx.control_model, control_report = self._train(
                ctx, cfg.eval.ab_control, cfg.model.seed)
            if ctx.store is not None:
                from repro.io import save_model
                save_model(ctx.control_model,
                           ctx.store.path(ArtifactStore.CONTROL_MODEL))
            info["control_model"] = cfg.eval.ab_control
            info["control_final_loss"] = control_report.final_loss
            info["summary"] += "; control %s final loss %.3f" % (
                cfg.eval.ab_control, control_report.final_loss)
        return info

    @staticmethod
    def _train(ctx: PipelineContext, name: str, seed: int,
               checkpoint_path=None):
        cfg = ctx.config
        model = make_model(name, ctx.train_graph,
                           num_subspaces=cfg.model.num_subspaces,
                           subspace_dim=cfg.model.subspace_dim,
                           seed=seed, compute_plane=cfg.model.compute_plane,
                           kernels=cfg.model.kernels,
                           **cfg.model.overrides)
        trainer = Trainer(model, cfg.training.trainer_config(),
                          checkpoint_path=checkpoint_path)
        if checkpoint_path is not None and checkpoint_path.exists():
            # a leftover checkpoint means the previous run died mid-
            # train: resume it (the trainer verifies the config
            # fingerprint and deletes the file once training completes)
            trainer.restore_checkpoint()
        report = trainer.train()
        return model, report


class IndexStage(Stage):
    """Build the inverted indices through the configured search backend."""

    name = "index"

    def run(self, ctx: PipelineContext) -> Dict[str, Any]:
        cfg = ctx.config.index
        relations = cfg.relation_list()
        ctx.index_set = self._build(ctx, ctx.model, relations)
        if ctx.store is not None:
            ctx.index_set.save(ctx.store.path(ArtifactStore.INDICES))
        if ctx.control_model is not None:
            ctx.control_index_set = self._build(ctx, ctx.control_model,
                                                relations)
            if ctx.store is not None:
                ctx.control_index_set.save(
                    ctx.store.path(ArtifactStore.CONTROL_INDICES))
        build_seconds = {rel.value: ix.build_seconds
                         for rel, ix in ctx.index_set.indices.items()}
        info = {
            "backend": cfg.backend,
            "top_k": cfg.top_k,
            "relations": sorted(build_seconds),
            "build_seconds": build_seconds,
            "total_build_seconds": ctx.index_set.total_build_seconds,
            "summary": "%d indices (backend %r, top_k %d) in %.2fs"
                       % (len(build_seconds), cfg.backend, cfg.top_k,
                          ctx.index_set.total_build_seconds),
        }
        if cfg.backend == "sharded":
            info["num_shards"] = cfg.num_shards
            info["inner_backend"] = cfg.inner_backend
            info["shard_parallelism"] = cfg.shard_parallelism
            info["summary"] += " [%d shards x %s]" % (cfg.num_shards,
                                                      cfg.inner_backend)
        ann = cfg.backend if cfg.backend in ("ivf", "nsw") else (
            cfg.inner_backend if cfg.backend == "sharded"
            and cfg.inner_backend in ("ivf", "nsw") else None)
        if ann is not None:
            dials = cfg._ann_dial_kwargs(ann)
            info.update(dials)
            info["summary"] += " [%s]" % ", ".join(
                "%s=%s" % (k, v) for k, v in sorted(dials.items()))
        info["backend_params"] = ctx.index_set.backend_params
        return info

    @staticmethod
    def _build(ctx: PipelineContext, model, relations):
        cfg = ctx.config.index
        return IndexSet(model, top_k=cfg.top_k, num_workers=cfg.num_workers,
                        batch_size=cfg.batch_size, backend=cfg.backend,
                        backend_kwargs=cfg.resolved_backend_kwargs()
                        ).build(relations)


class ServeStage(Stage):
    """Stand up the serving engine and measure the batched service time."""

    name = "serve"

    def run(self, ctx: PipelineContext) -> Dict[str, Any]:
        cfg = ctx.config.serving
        if not cfg.enabled:
            return {"enabled": False, "summary": "disabled"}
        index_cfg = ctx.config.index
        ctx.retriever = ctx.make_retriever(ctx.index_set)
        ctx.engine = ServingEngine(
            ctx.retriever, max_batch_size=cfg.max_batch_size,
            cache_size=cfg.cache_size,
            num_shards=index_cfg.serving_shards,
            shard_parallelism=index_cfg.shard_parallelism,
            slice_retries=cfg.slice_retries,
            breaker=cfg.make_breaker())
        info: Dict[str, Any] = {"enabled": True,
                                "max_batch_size": cfg.max_batch_size,
                                "cache_size": cfg.cache_size,
                                "num_shards": index_cfg.serving_shards}
        if cfg.measure_requests < 1:
            info["summary"] = "engine up (service time not measured)"
            return info

        data_cfg = ctx.config.data.simulator_config()
        rng = np.random.default_rng(cfg.seed)
        queries = rng.integers(data_cfg.num_queries,
                               size=cfg.measure_requests)
        preclicks = [list(rng.integers(data_cfg.num_items,
                                       size=cfg.preclicks_per_request))
                     for _ in range(cfg.measure_requests)]
        sim = ServingSimulator(ctx.retriever)
        service = sim.measure_batched_service_time(
            ctx.engine, queries, preclicks, k=cfg.k,
            repeats=cfg.measure_repeats)
        ctx.fleet_workers = sim.size_fleet(cfg.target_qps,
                                           cfg.target_utilisation)
        sweep = [{"qps": s.qps, "response_time_ms": s.response_time_ms,
                  "utilisation": s.utilisation}
                 for s in sim.sweep(cfg.qps_sweep)]
        stats = ctx.engine.stats
        info.update({
            "service_seconds": service,
            "service_ms": 1000.0 * service,
            "batches": stats.batches,
            "mean_batch_size": stats.mean_batch_size,
            "cache_hit_rate": stats.cache_hit_rate,
            "fleet_workers": ctx.fleet_workers,
            "target_qps": cfg.target_qps,
            "target_utilisation": cfg.target_utilisation,
            "qps_sweep": sweep,
            "summary": "%.3f ms/request batched, cache hit %.0f%%, "
                       "fleet %d workers for %.0f qps"
                       % (1000.0 * service, 100.0 * stats.cache_hit_rate,
                          ctx.fleet_workers, cfg.target_qps),
        })
        admission = self._admission_probe(ctx, service)
        if admission is not None:
            info["admission"] = admission
            info["summary"] += ", admission p99 %.2f ms (shed %.0f%%)" % (
                admission["latency_ms"]["p99"],
                100.0 * admission["shed_rate"])
        return info

    @staticmethod
    def _admission_probe(ctx: PipelineContext, service: float):
        """Drive the admission layer over replayed log sessions.

        One short closed-loop run at ~60% of the single-worker
        saturation implied by the measured batched service time —
        enough to surface the configured admission knobs, the queue
        latency percentiles, and any shedding in the stage report.
        """
        cfg = ctx.config.serving
        train_logs = (ctx.logs or [])[:ctx.config.data.train_days]
        if not any(len(log) for log in train_logs):
            return None
        controller = AdmissionController(ctx.engine, num_workers=1,
                                         **cfg.admission_kwargs())
        # the probe replays the training window's sessions; the paid
        # share is fixed — lane policy is an admission knob, not a
        # traffic one
        traffic = TrafficGenerator(train_logs, paid_share=0.25,
                                   seed=cfg.seed)
        probe_qps = 0.6 / max(service, 1e-9)
        duration = cfg.measure_requests / probe_qps
        report = traffic.drive(controller, qps=probe_qps, duration=duration)
        payload = controller.stats.summary()
        payload.update({
            "max_queue": controller.max_queue,
            "deadline_ms": 1000.0 * controller.deadline,
            "max_batch": controller.max_batch,
            "priority_share": controller.priority_share,
            "probe_qps": probe_qps,
            "achieved_qps": report.achieved_qps,
        })
        return payload


class EvalStage(Stage):
    """Offline metrics (Next AUC, Hitrate/nDCG) and the simulated A/B test."""

    name = "eval"

    def run(self, ctx: PipelineContext) -> Dict[str, Any]:
        cfg = ctx.config.eval
        if not cfg.enabled:
            return {"enabled": False, "summary": "disabled"}
        info: Dict[str, Any] = {"enabled": True}
        parts: List[str] = []

        if (cfg.auc_samples > 0 and ctx.model is not None
                and ctx.eval_graph is not None):
            auc = next_auc(ctx.model.similarity, ctx.eval_graph,
                           num_samples=cfg.auc_samples, seed=cfg.seed)
            info["next_auc"] = auc
            parts.append("next-day AUC %.2f" % auc)

        if cfg.ranking_ks and ctx.config.data.eval_days:
            eval_log = ctx.logs[ctx.config.data.train_days]
            for relation, target_type, label in (
                    (Relation.Q2I, NodeType.ITEM, "q2i"),
                    (Relation.Q2A, NodeType.AD, "q2a")):
                if relation not in ctx.index_set:
                    continue
                index = ctx.index_set[relation]
                # cutoffs are bounded by the *built* index width (which
                # can be below the nominal top_k when the target space
                # is small), so run and artifact-reload reports agree
                ks = [k for k in cfg.ranking_ks if k <= index.ids.shape[1]]
                if not ks:
                    continue
                truth = ground_truth_from_log(eval_log, target_type)
                metrics = evaluate_ranking(
                    lambda q, k: index.lookup_batch(q, k)[0], truth, ks=ks,
                    max_queries=cfg.max_queries, seed=cfg.seed)
                info[label] = metrics.row()
            if "q2i" in info:
                k0 = min(int(key.split("@")[1]) for key in info["q2i"]
                         if key.startswith("hr@"))
                parts.append("Q2I hr@%d %.2f" % (k0, info["q2i"]["hr@%d" % k0]))

        if cfg.ab_control and ctx.control_index_set is None:
            # only reachable when re-evaluating artifacts: a run() with
            # ab_control set always trains and indexes the control
            raise RuntimeError(
                "A/B test requested (eval.ab_control=%r) but no control "
                "channel is available — these artifacts were produced "
                "without one; re-run the pipeline with eval.ab_control set"
                % cfg.ab_control)
        if cfg.ab_control:
            control = ctx.make_retriever(ctx.control_index_set)
            treatment = ctx.make_retriever(ctx.index_set)
            result = run_ab_test(ctx.simulator.universe, control, treatment,
                                 ABTestConfig(num_requests=cfg.ab_requests,
                                              seed=cfg.seed))
            info["ab_control"] = cfg.ab_control
            info["ab_ctr_lift"] = result.ctr_lift()
            info["ab_rpm_lift"] = result.rpm_lift()
            parts.append("A/B overall CTR %+.2f%% RPM %+.2f%%"
                         % (info["ab_ctr_lift"]["overall"],
                            info["ab_rpm_lift"]["overall"]))

        info["summary"] = "; ".join(parts) if parts else "nothing to evaluate"
        return info


#: The canonical stage order of one full run.
DEFAULT_STAGES = (DataStage, GraphStage, TrainStage, IndexStage, ServeStage,
                  EvalStage)
