"""The declarative configuration tree for :class:`~repro.pipeline.core.Pipeline`.

One :class:`PipelineConfig` describes a full offline→serving lifecycle:
which platform to simulate, how to build the graph, which model variant
to train and how, how the six inverted indices are constructed, how the
serving layer is sized, and what to evaluate.  Every section is a
dataclass validated on construction, and the whole tree round-trips
through ``to_dict``/``from_dict`` and JSON, so an experiment is a file:

    config = PipelineConfig.load("experiment.json")
    config = config.with_overrides(["training.steps=500"])
    Pipeline(config).run()
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from typing import Any, Dict, List, Optional, Sequence

from repro.common import atomic_write_text
from repro.data.synthetic import SimulatorConfig
from repro.graph.schema import Relation
from repro.models.amcad import AMCADConfig, list_models
from repro.geometry.kernels import KERNEL_MODES
from repro.models.encoder import COMPUTE_PLANES
from repro.retrieval.backend import BACKENDS
from repro.testing.faults import FaultSpec
from repro.training.trainer import DATA_PLANES, TrainerConfig


def _known_fields(cls) -> List[str]:
    return [f.name for f in dataclasses.fields(cls)]


def _reject_unknown(section: str, given: Dict[str, Any], cls) -> None:
    allowed = set(_known_fields(cls))
    unknown = sorted(set(given) - allowed)
    if unknown:
        raise ValueError(
            "unknown %s key(s) %s; known keys: %s"
            % (section, ", ".join(map(repr, unknown)),
               ", ".join(sorted(allowed))))


@dataclasses.dataclass
class DataConfig:
    """Which synthetic platform to simulate and how to split its days."""

    #: total days of behaviour logs to simulate
    days: int = 2
    #: leading days used to build the training graph; the remainder is
    #: the held-out next-day evaluation window
    train_days: int = 1
    seed: int = 7
    #: overrides forwarded to :class:`~repro.data.synthetic.SimulatorConfig`
    #: (e.g. ``{"num_queries": 500}``); the seed comes from ``seed`` above
    simulator: Dict[str, Any] = dataclasses.field(default_factory=dict)

    def __post_init__(self):
        if self.days < 1:
            raise ValueError("data.days must be >= 1, got %d" % self.days)
        if not 1 <= self.train_days <= self.days:
            raise ValueError("data.train_days must be in [1, data.days=%d], "
                             "got %d" % (self.days, self.train_days))
        if "seed" in self.simulator:
            raise ValueError("set data.seed, not data.simulator['seed']")
        _reject_unknown("data.simulator", self.simulator, SimulatorConfig)

    @property
    def eval_days(self) -> int:
        return self.days - self.train_days

    def simulator_config(self) -> SimulatorConfig:
        return SimulatorConfig(seed=self.seed, **self.simulator)


@dataclasses.dataclass
class GraphConfig:
    """Behaviour-log → heterogeneous-graph construction knobs."""

    semantic_threshold: float = 0.4
    max_semantic_degree: int = 20

    def __post_init__(self):
        if not 0.0 <= self.semantic_threshold <= 1.0:
            raise ValueError("graph.semantic_threshold must be in [0, 1], "
                             "got %r" % self.semantic_threshold)
        if self.max_semantic_degree < 1:
            raise ValueError("graph.max_semantic_degree must be >= 1")


@dataclasses.dataclass
class ModelConfig:
    """Which model variant to build, and its geometry."""

    name: str = "amcad"
    num_subspaces: int = 2
    subspace_dim: int = 4
    seed: int = 0
    #: context-encoder compute plane: ``"frontier"`` (dedup-encode-gather)
    #: or ``"recursive"`` (the parity reference)
    compute_plane: str = "frontier"
    #: geometry kernel implementations: ``"auto"`` (compiled when numba
    #: is importable, numpy otherwise), ``"numpy"``, or ``"compiled"``
    #: (requires the ``[compiled]`` extra)
    kernels: str = "auto"
    #: extra :class:`~repro.models.amcad.AMCADConfig` overrides
    overrides: Dict[str, Any] = dataclasses.field(default_factory=dict)

    def __post_init__(self):
        key = self.name.lower()
        if key.startswith("product:"):
            signature = key.split(":", 1)[1]
            if not signature or any(ch not in "ehsu" for ch in signature):
                raise ValueError(
                    "model.name %r: product signature must be a non-empty "
                    "string over 'EHSU', e.g. 'product:HS'" % self.name)
        elif key not in list_models():
            raise ValueError(
                "model.name %r is not a registered variant; choose one of: "
                "%s, or 'product:<SIG>'"
                % (self.name, ", ".join(list_models())))
        if self.num_subspaces < 1 or self.subspace_dim < 1:
            raise ValueError("model geometry must be positive, got "
                             "num_subspaces=%d subspace_dim=%d"
                             % (self.num_subspaces, self.subspace_dim))
        if self.compute_plane not in COMPUTE_PLANES:
            raise ValueError("model.compute_plane must be one of %s, got %r"
                             % (", ".join(COMPUTE_PLANES), self.compute_plane))
        if self.kernels not in KERNEL_MODES:
            raise ValueError("model.kernels must be one of %s, got %r"
                             % (", ".join(KERNEL_MODES), self.kernels))
        reserved = {"num_subspaces", "subspace_dim", "seed", "compute_plane",
                    "kernels"}
        if reserved & set(self.overrides):
            raise ValueError("set model.%s directly, not via model.overrides"
                             % "/".join(sorted(reserved & set(self.overrides))))
        _reject_unknown("model.overrides", self.overrides, AMCADConfig)


@dataclasses.dataclass
class TrainingConfig:
    """Training-loop hyper-parameters (mirrors :class:`TrainerConfig`)."""

    steps: int = 200
    batch_size: int = 64
    num_negatives: int = 6
    easy_ratio: float = 2.0 / 3.0
    learning_rate: float = 0.05
    warmup_steps: int = 10
    clip_norm: float = 5.0
    seed: int = 0
    #: sampling implementation: ``"batched"`` (array-native meta-path
    #: walks + negative draws) or ``"looped"`` (per-pair reference)
    data_plane: str = "batched"
    #: frontier-plane neighbour-draw reuse window in steps (1 = resample
    #: every step; see ``TrainerConfig.plan_refresh``)
    plan_refresh: int = 1
    #: sampling-phase producer processes (0 = synchronous reference
    #: path; see ``TrainerConfig.prefetch_workers``)
    prefetch_workers: int = 0
    #: payload-queue depth when prefetching (double-buffering bound)
    prefetch_depth: int = 2
    #: micro-batches per optimiser step (loss scaled 1/K; gradients
    #: equal one K·batch_size batch)
    accumulate_steps: int = 1
    #: GCN rounds kept on the tape, counted from the top (0 = full
    #: backward; frontier compute plane only)
    backward_depth: int = 0
    #: optimiser steps between resume checkpoints (0 disables; resumed
    #: runs produce bit-identical losses to uninterrupted ones)
    checkpoint_every: int = 0

    def __post_init__(self):
        if self.steps < 1:
            raise ValueError("training.steps must be >= 1")
        if self.batch_size < 1:
            raise ValueError("training.batch_size must be >= 1")
        if self.learning_rate <= 0:
            raise ValueError("training.learning_rate must be > 0")
        if self.data_plane not in DATA_PLANES:
            raise ValueError("training.data_plane must be one of %s, got %r"
                             % (", ".join(DATA_PLANES), self.data_plane))
        if self.plan_refresh < 1:
            raise ValueError("training.plan_refresh must be >= 1, got %d"
                             % self.plan_refresh)
        if self.prefetch_workers < 0:
            raise ValueError("training.prefetch_workers must be >= 0, got %d"
                             % self.prefetch_workers)
        if self.prefetch_depth < 1:
            raise ValueError("training.prefetch_depth must be >= 1, got %d"
                             % self.prefetch_depth)
        if self.accumulate_steps < 1:
            raise ValueError("training.accumulate_steps must be >= 1, got %d"
                             % self.accumulate_steps)
        if self.backward_depth < 0:
            raise ValueError("training.backward_depth must be >= 0, got %d"
                             % self.backward_depth)
        if self.prefetch_workers > 0 and self.data_plane != "batched":
            raise ValueError(
                "training.prefetch_workers > 0 requires "
                "training.data_plane='batched', got %r" % self.data_plane)
        if (self.plan_refresh > 1 and self.prefetch_workers >= 1
                and self.plan_refresh <= self.prefetch_workers):
            raise ValueError(
                "training.plan_refresh=%d with prefetch_workers=%d would "
                "silently miss the per-worker draw cache on every plan; "
                "use plan_refresh > prefetch_workers"
                % (self.plan_refresh, self.prefetch_workers))
        if self.checkpoint_every < 0:
            raise ValueError("training.checkpoint_every must be >= 0, got %d"
                             % self.checkpoint_every)
        if (self.checkpoint_every > 0 and self.plan_refresh > 1
                and (self.checkpoint_every * self.accumulate_steps)
                % self.plan_refresh != 0):
            raise ValueError(
                "training.checkpoint_every=%d with accumulate_steps=%d must "
                "checkpoint on a plan_refresh=%d boundary (checkpoint_every "
                "* accumulate_steps divisible by plan_refresh), or a resumed "
                "run would regenerate plans from a different window"
                % (self.checkpoint_every, self.accumulate_steps,
                   self.plan_refresh))

    def trainer_config(self) -> TrainerConfig:
        return TrainerConfig(**dataclasses.asdict(self))


@dataclasses.dataclass
class IndexConfig:
    """Offline inverted-index construction."""

    top_k: int = 50
    backend: str = "exact"
    backend_kwargs: Dict[str, Any] = dataclasses.field(default_factory=dict)
    num_workers: int = 1
    batch_size: int = 256
    #: relations to build (``"q2q"`` … ``"i2a"``); ``None`` = all six
    relations: Optional[List[str]] = None
    #: target-space shards per index (``backend="sharded"`` only; also
    #: the serving engine's micro-batch fan-out width)
    num_shards: int = 2
    #: backend each shard delegates to (``"exact"``, ``"pq"``,
    #: ``"ivf"``, ``"nsw"``)
    inner_backend: str = "exact"
    #: thread-pool width for shard builds/searches and for the serving
    #: engine's shard fan-out (1 = sequential)
    shard_parallelism: int = 1
    #: per-shard search deadline in ms (0 disables; a timed-out shard
    #: is retried, then excluded from the merge — degraded mode)
    shard_timeout_ms: float = 0.0
    #: retries per failed shard search before it is excluded
    shard_retries: int = 0
    #: base backoff between shard retry rounds in ms (doubles per round)
    shard_backoff_ms: float = 0.0
    #: IVF inverted lists (``backend="ivf"``; 0 = sqrt(catalog) heuristic)
    num_lists: int = 0
    #: IVF lists scanned per query — the IVF recall/latency dial
    nprobe: int = 16
    #: NSW beam width per query — the graph recall/latency dial
    ef_search: int = 48
    #: candidates re-ranked with the true manifold metric after the
    #: tangent-space prune (ANN backends; 0 = re-rank every candidate)
    rerank_k: int = 0

    def __post_init__(self):
        if self.top_k < 1:
            raise ValueError("index.top_k must be >= 1")
        if self.backend not in BACKENDS:
            raise ValueError("index.backend %r is not registered; choose "
                             "one of: %s"
                             % (self.backend, ", ".join(sorted(BACKENDS))))
        if self.num_shards < 1:
            raise ValueError("index.num_shards must be >= 1, got %d"
                             % self.num_shards)
        if self.shard_parallelism < 1:
            raise ValueError("index.shard_parallelism must be >= 1, got %d"
                             % self.shard_parallelism)
        if (self.inner_backend == "sharded"
                or self.inner_backend not in BACKENDS):
            inner = sorted(set(BACKENDS) - {"sharded"})
            raise ValueError("index.inner_backend must be one of: %s; "
                             "got %r" % (", ".join(inner),
                                         self.inner_backend))
        if self.shard_timeout_ms < 0:
            raise ValueError("index.shard_timeout_ms must be >= 0, got %r"
                             % self.shard_timeout_ms)
        if self.shard_retries < 0:
            raise ValueError("index.shard_retries must be >= 0, got %d"
                             % self.shard_retries)
        if self.shard_backoff_ms < 0:
            raise ValueError("index.shard_backoff_ms must be >= 0, got %r"
                             % self.shard_backoff_ms)
        if self.num_lists < 0:
            raise ValueError("index.num_lists must be >= 0 (0 = sqrt "
                             "heuristic), got %d" % self.num_lists)
        if self.nprobe < 1:
            raise ValueError("index.nprobe must be >= 1, got %d"
                             % self.nprobe)
        if self.ef_search < 1:
            raise ValueError("index.ef_search must be >= 1, got %d"
                             % self.ef_search)
        if self.rerank_k < 0:
            raise ValueError("index.rerank_k must be >= 0 (0 = re-rank "
                             "every candidate), got %d" % self.rerank_k)
        if self.relations is not None:
            valid = {r.value for r in Relation}
            unknown = sorted(set(self.relations) - valid)
            if unknown:
                raise ValueError("index.relations has unknown relation(s) "
                                 "%s; valid: %s"
                                 % (unknown, ", ".join(sorted(valid))))

    def relation_list(self) -> Optional[List[Relation]]:
        if self.relations is None:
            return None
        return [Relation(value) for value in self.relations]

    def _ann_dial_kwargs(self, backend: str) -> Dict[str, Any]:
        """The recall/latency dial kwargs a given ANN backend takes."""
        if backend == "ivf":
            return {"num_lists": self.num_lists, "nprobe": self.nprobe,
                    "rerank_k": self.rerank_k}
        if backend == "nsw":
            return {"ef_search": self.ef_search, "rerank_k": self.rerank_k}
        return {}

    def resolved_backend_kwargs(self) -> Dict[str, Any]:
        """Constructor kwargs for the configured backend.

        For ``backend="sharded"`` the shard keys are folded in; for the
        ANN backends (``"ivf"``/``"nsw"``, directly or as the inner
        backend of a sharded index) the recall/latency dials are folded
        in (explicit ``backend_kwargs`` entries win, so power users can
        still set e.g. ``inner_kwargs`` or override the shard count).
        """
        kwargs = dict(self.backend_kwargs)
        for key, value in self._ann_dial_kwargs(self.backend).items():
            kwargs.setdefault(key, value)
        if self.backend == "sharded":
            kwargs.setdefault("num_shards", self.num_shards)
            kwargs.setdefault("inner_backend", self.inner_backend)
            kwargs.setdefault("parallelism", self.shard_parallelism)
            inner_dials = self._ann_dial_kwargs(self.inner_backend)
            if inner_dials:
                inner_kwargs = dict(kwargs.get("inner_kwargs") or {})
                for key, value in inner_dials.items():
                    inner_kwargs.setdefault(key, value)
                kwargs["inner_kwargs"] = inner_kwargs
            if self.shard_timeout_ms > 0:
                kwargs.setdefault("shard_timeout",
                                  self.shard_timeout_ms / 1000.0)
            if self.shard_retries > 0:
                kwargs.setdefault("shard_retries", self.shard_retries)
            if self.shard_backoff_ms > 0:
                kwargs.setdefault("shard_backoff",
                                  self.shard_backoff_ms / 1000.0)
        return kwargs

    @property
    def serving_shards(self) -> int:
        """Micro-batch fan-out width for the serving engine."""
        return self.num_shards if self.backend == "sharded" else 1


@dataclasses.dataclass
class ServingConfig:
    """Online serving layer: retriever knobs, engine, fleet sizing."""

    enabled: bool = True
    expansion_k: int = 10
    ads_per_key: int = 10
    k: int = 20
    max_batch_size: int = 32
    cache_size: int = 1024
    #: size of the synthetic request stream used to measure the batched
    #: service time (0 skips measurement and the QPS sweep)
    measure_requests: int = 40
    measure_repeats: int = 2
    preclicks_per_request: int = 2
    #: offered load the fleet is sized for (via ``size_fleet``)
    target_qps: float = 50000.0
    target_utilisation: float = 0.8
    qps_sweep: List[float] = dataclasses.field(
        default_factory=lambda: [1000.0, 5000.0, 10000.0, 30000.0, 50000.0])
    seed: int = 0
    #: admission-queue watermark: arrivals beyond this depth are shed
    admission_max_queue: int = 256
    #: per-request queueing budget (ms): partial batches dispatch when
    #: the oldest pending request has spent it, and requests that would
    #: wait longer are shed at dispatch
    admission_deadline_ms: float = 50.0
    #: fill target per admitted micro-batch (0 = ``max_batch_size``)
    admission_max_batch: int = 0
    #: fraction of the admission queue reserved for the paid lane
    admission_priority_share: float = 0.0
    #: retries per raising engine shard slice before it degrades to
    #: empty results for its requests
    slice_retries: int = 0
    #: circuit-breaker outcome window (0 disables the breaker)
    breaker_window: int = 0
    #: error rate over the window that trips the breaker open
    breaker_threshold: float = 0.5
    #: while open, every Nth admission passes as a half-open probe
    breaker_probe_every: int = 8

    def __post_init__(self):
        if self.k < 1 or self.expansion_k < 1 or self.ads_per_key < 1:
            raise ValueError("serving.k/expansion_k/ads_per_key must be >= 1")
        if self.max_batch_size < 1:
            raise ValueError("serving.max_batch_size must be >= 1")
        if self.measure_requests < 0:
            raise ValueError("serving.measure_requests must be >= 0")
        if self.measure_repeats < 1:
            raise ValueError("serving.measure_repeats must be >= 1")
        if self.preclicks_per_request < 0:
            raise ValueError("serving.preclicks_per_request must be >= 0")
        if not 0.0 < self.target_utilisation <= 1.0:
            raise ValueError("serving.target_utilisation must be in (0, 1], "
                             "got %r" % self.target_utilisation)
        if self.target_qps <= 0:
            raise ValueError("serving.target_qps must be > 0")
        if self.admission_max_queue < 1:
            raise ValueError("serving.admission_max_queue must be >= 1, "
                             "got %d" % self.admission_max_queue)
        if not self.admission_deadline_ms > 0:
            raise ValueError("serving.admission_deadline_ms must be > 0, "
                             "got %r" % self.admission_deadline_ms)
        if self.admission_max_batch < 0:
            raise ValueError("serving.admission_max_batch must be >= 0 "
                             "(0 adopts max_batch_size), got %d"
                             % self.admission_max_batch)
        if not 0.0 <= self.admission_priority_share <= 1.0:
            raise ValueError("serving.admission_priority_share must be in "
                             "[0, 1], got %r" % self.admission_priority_share)
        if self.slice_retries < 0:
            raise ValueError("serving.slice_retries must be >= 0, got %d"
                             % self.slice_retries)
        if self.breaker_window < 0:
            raise ValueError("serving.breaker_window must be >= 0, got %d"
                             % self.breaker_window)
        if not 0.0 < self.breaker_threshold <= 1.0:
            raise ValueError("serving.breaker_threshold must be in (0, 1], "
                             "got %r" % self.breaker_threshold)
        if self.breaker_probe_every < 1:
            raise ValueError("serving.breaker_probe_every must be >= 1, "
                             "got %d" % self.breaker_probe_every)

    def make_breaker(self):
        """A configured :class:`CircuitBreaker`, or ``None`` when disabled."""
        if self.breaker_window < 1:
            return None
        from repro.serving.breaker import CircuitBreaker
        return CircuitBreaker(window=self.breaker_window,
                              threshold=self.breaker_threshold,
                              probe_every=self.breaker_probe_every)

    def admission_kwargs(self) -> Dict[str, Any]:
        """Constructor kwargs for an ``AdmissionController`` over the engine.

        ``admission_max_batch=0`` resolves to the engine's
        ``max_batch_size``, so the admission layer fills batches to the
        same width the engine would slice them at.
        """
        return {
            "max_queue": self.admission_max_queue,
            "deadline_ms": self.admission_deadline_ms,
            "max_batch": self.admission_max_batch or self.max_batch_size,
            "priority_share": self.admission_priority_share,
            "k": self.k,
        }


@dataclasses.dataclass
class EvalConfig:
    """What to evaluate after training and index construction."""

    enabled: bool = True
    #: next-day link-prediction AUC sample pairs (0 disables)
    auc_samples: int = 300
    #: Hitrate/nDCG cutoffs against next-day click ground truth
    #: (empty disables the ranking evaluation)
    ranking_ks: List[int] = dataclasses.field(default_factory=lambda: [10, 100])
    max_queries: int = 150
    #: model variant for the A/B control channel (``None`` disables the
    #: simulated online A/B test; e.g. ``"amcad_e"`` for the paper's setup)
    ab_control: Optional[str] = None
    ab_requests: int = 400
    seed: int = 0

    def __post_init__(self):
        if self.auc_samples < 0:
            raise ValueError("eval.auc_samples must be >= 0")
        if any(k < 1 for k in self.ranking_ks):
            raise ValueError("eval.ranking_ks must be positive")
        if self.ab_control is not None:
            # reuse the model-name validation
            ModelConfig(name=self.ab_control)
            if self.ab_requests < 1:
                raise ValueError("eval.ab_requests must be >= 1 when "
                                 "eval.ab_control is set")


@dataclasses.dataclass
class FaultsConfig:
    """Fault-injection plan (the chaos harness; empty = no faults).

    Each entry of ``specs`` is a
    :class:`~repro.testing.faults.FaultSpec` as a plain dict
    (``{"site": "shard.search", "mode": "hang", ...}``); with
    ``enabled`` the plan is installed process-wide when a pipeline
    stands up its serving engine or trainer, and shipped to spawned
    prefetch workers.  Strictly a testing/benchmark surface — the
    default config injects nothing.
    """

    enabled: bool = True
    specs: List[Dict[str, Any]] = dataclasses.field(default_factory=list)

    def __post_init__(self):
        for i, spec in enumerate(self.specs):
            if not isinstance(spec, dict):
                raise ValueError("faults.specs[%d] must be an object, got %r"
                                 % (i, type(spec).__name__))
            FaultSpec.from_dict(spec)  # full key/value validation

    def fault_specs(self) -> List[FaultSpec]:
        """The validated specs, or ``[]`` when disabled."""
        if not self.enabled:
            return []
        return [FaultSpec.from_dict(spec) for spec in self.specs]


_SECTIONS = {
    "data": DataConfig,
    "graph": GraphConfig,
    "model": ModelConfig,
    "training": TrainingConfig,
    "index": IndexConfig,
    "serving": ServingConfig,
    "eval": EvalConfig,
    "faults": FaultsConfig,
}


@dataclasses.dataclass
class PipelineConfig:
    """The whole lifecycle as one validated, serialisable object."""

    name: str = "pipeline"
    #: default artifact directory for ``Pipeline`` runs (CLI ``--artifacts``
    #: overrides; ``None`` keeps the run in memory)
    artifact_dir: Optional[str] = None
    data: DataConfig = dataclasses.field(default_factory=DataConfig)
    graph: GraphConfig = dataclasses.field(default_factory=GraphConfig)
    model: ModelConfig = dataclasses.field(default_factory=ModelConfig)
    training: TrainingConfig = dataclasses.field(default_factory=TrainingConfig)
    index: IndexConfig = dataclasses.field(default_factory=IndexConfig)
    serving: ServingConfig = dataclasses.field(default_factory=ServingConfig)
    eval: EvalConfig = dataclasses.field(default_factory=EvalConfig)
    faults: FaultsConfig = dataclasses.field(default_factory=FaultsConfig)

    # -- dict / JSON round-trip ----------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "PipelineConfig":
        """Build and validate a config from a plain dict (e.g. JSON)."""
        payload = dict(payload)
        _reject_unknown("pipeline", payload, cls)
        kwargs: Dict[str, Any] = {}
        for key, value in payload.items():
            section_cls = _SECTIONS.get(key)
            if section_cls is None:
                kwargs[key] = value
                continue
            if not isinstance(value, dict):
                raise ValueError("section %r must be an object, got %r"
                                 % (key, type(value).__name__))
            _reject_unknown(key, value, section_cls)
            kwargs[key] = section_cls(**value)
        return cls(**kwargs)

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "PipelineConfig":
        return cls.from_dict(json.loads(text))

    def save(self, path) -> pathlib.Path:
        return atomic_write_text(path, self.to_json() + "\n")

    @classmethod
    def load(cls, path) -> "PipelineConfig":
        return cls.from_json(pathlib.Path(path).read_text())

    # -- CLI-style overrides -------------------------------------------------

    #: dotted paths whose values are free-form dicts: overrides may
    #: introduce keys there that the base config does not carry yet
    #: (they are still validated against the wrapped dataclass by
    #: ``from_dict``)
    _FREE_FORM_PATHS = frozenset(
        {"data.simulator", "model.overrides", "index.backend_kwargs"})

    def with_overrides(self, assignments: Sequence[str]) -> "PipelineConfig":
        """A new config with ``section.key=value`` assignments applied.

        Values are parsed as JSON where possible (``200`` → int,
        ``true`` → bool, ``[10,100]`` → list, ``null`` → None) and fall
        back to plain strings; the result is re-validated in full.
        """
        payload = self.to_dict()
        for assignment in assignments:
            if "=" not in assignment:
                raise ValueError("override %r is not of the form "
                                 "section.key=value" % assignment)
            dotted, raw = assignment.split("=", 1)
            try:
                value = json.loads(raw)
            except json.JSONDecodeError:
                value = raw
            target = payload
            parts = dotted.strip().split(".")
            for part in parts[:-1]:
                if not isinstance(target.get(part), dict):
                    raise ValueError(
                        "override %r: %r is not a config section; "
                        "available: %s"
                        % (assignment, part, ", ".join(sorted(target))))
                target = target[part]
            free_form = ".".join(parts[:-1]) in self._FREE_FORM_PATHS
            if parts[-1] not in target and not free_form:
                raise ValueError(
                    "override %r: unknown key %r; available: %s"
                    % (assignment, parts[-1], ", ".join(sorted(target))))
            target[parts[-1]] = value
        return PipelineConfig.from_dict(payload)
