"""Structured results of one pipeline run.

Every stage contributes a :class:`StageReport` — its wall-clock plus a
JSON-safe ``info`` dict (training losses, AUC, batched service time,
A/B lifts, …).  The :class:`PipelineReport` aggregates them, persists
as ``report.json`` next to the other artifacts, and renders the
human-readable summary the CLI prints.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from typing import Any, Dict, List, Optional

import numpy as np

from repro.common import atomic_write_text


def jsonify(value: Any) -> Any:
    """Recursively convert numpy scalars/arrays so ``json.dumps`` works."""
    if isinstance(value, dict):
        return {str(k): jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonify(v) for v in value]
    if isinstance(value, np.ndarray):
        return [jsonify(v) for v in value.tolist()]
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (np.bool_,)):
        return bool(value)
    return value


@dataclasses.dataclass
class StageReport:
    """One stage's outcome: name, wall-clock, and metric payload."""

    name: str
    wall_seconds: float
    info: Dict[str, Any] = dataclasses.field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name,
                "wall_seconds": float(self.wall_seconds),
                "info": jsonify(self.info)}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "StageReport":
        return cls(name=payload["name"],
                   wall_seconds=float(payload["wall_seconds"]),
                   info=dict(payload.get("info", {})))


@dataclasses.dataclass
class PipelineReport:
    """Per-stage reports plus convenience accessors for headline numbers."""

    pipeline: str
    stages: List[StageReport] = dataclasses.field(default_factory=list)

    def stage(self, name: str) -> Optional[StageReport]:
        for stage in self.stages:
            if stage.name == name:
                return stage
        return None

    def __getitem__(self, name: str) -> StageReport:
        stage = self.stage(name)
        if stage is None:
            raise KeyError("no stage %r in report (have: %s)"
                           % (name, ", ".join(s.name for s in self.stages)))
        return stage

    @property
    def total_seconds(self) -> float:
        return float(sum(s.wall_seconds for s in self.stages))

    def _info(self, stage: str, key: str, default=None):
        report = self.stage(stage)
        if report is None:
            return default
        return report.info.get(key, default)

    # headline numbers (None when the producing stage was skipped)

    @property
    def final_loss(self) -> Optional[float]:
        return self._info("train", "final_loss")

    @property
    def training_losses(self) -> List[float]:
        return self._info("train", "losses", [])

    @property
    def next_auc(self) -> Optional[float]:
        return self._info("eval", "next_auc")

    @property
    def service_seconds(self) -> Optional[float]:
        return self._info("serve", "service_seconds")

    @property
    def ab_ctr_lift(self) -> Optional[Dict[str, float]]:
        return self._info("eval", "ab_ctr_lift")

    @property
    def ab_rpm_lift(self) -> Optional[Dict[str, float]]:
        return self._info("eval", "ab_rpm_lift")

    # -- persistence ---------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {"pipeline": self.pipeline,
                "total_seconds": self.total_seconds,
                "stages": [s.to_dict() for s in self.stages]}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "PipelineReport":
        return cls(pipeline=payload["pipeline"],
                   stages=[StageReport.from_dict(s)
                           for s in payload.get("stages", [])])

    def save(self, path) -> pathlib.Path:
        return atomic_write_text(
            path, json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n")

    @classmethod
    def load(cls, path) -> "PipelineReport":
        return cls.from_dict(json.loads(pathlib.Path(path).read_text()))

    # -- human-readable rendering -------------------------------------------

    def summary(self) -> str:
        """Multi-line per-stage summary (what ``python -m repro run`` prints)."""
        lines = ["pipeline %r — %d stages, %.1fs total"
                 % (self.pipeline, len(self.stages), self.total_seconds)]
        for stage in self.stages:
            detail = stage.info.get("summary", "")
            lines.append("  %-6s %7.2fs  %s"
                         % (stage.name, stage.wall_seconds, detail))
        return "\n".join(lines)
