"""The :class:`Pipeline` orchestrator.

``Pipeline(config).run()`` drives the six stages in order, times each,
persists artifacts (when an artifact directory is configured) and
returns a structured :class:`~repro.pipeline.report.PipelineReport`.

``Pipeline.from_artifacts(dir)`` is the serving side of the contract:
it reloads the config and the built indices from disk and stands up
the retriever + micro-batching engine with *no model and no
retraining* — the paper's ship-to-serving step (Fig. 3).
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Sequence

from repro.pipeline.artifacts import ArtifactStore
from repro.pipeline.config import PipelineConfig
from repro.pipeline.report import PipelineReport, StageReport, jsonify
from repro.testing import faults as fault_harness
from repro.pipeline.stages import (
    DEFAULT_STAGES,
    EvalStage,
    PipelineContext,
)
from repro.retrieval.index import IndexSet
from repro.retrieval.two_layer import TwoLayerRetriever
from repro.serving.engine import ServingEngine


class Pipeline:
    """One configured offline→serving lifecycle.

    Parameters
    ----------
    config:
        The validated :class:`PipelineConfig`.
    artifact_dir:
        Where to persist artifacts; overrides ``config.artifact_dir``.
        When both are ``None`` the run stays in memory.
    context:
        Optional pre-populated :class:`PipelineContext` (e.g. from
        :meth:`PipelineContext.fork_data`) so sweeps over one dataset
        skip re-simulation.  Its config/store are rebound to this
        pipeline's.
    """

    def __init__(self, config: PipelineConfig,
                 artifact_dir: Optional[str] = None,
                 context: Optional[PipelineContext] = None):
        self.config = config
        root = artifact_dir if artifact_dir is not None else config.artifact_dir
        self.store = ArtifactStore(root) if root else None
        if context is None:
            context = PipelineContext(config=config, store=self.store)
        else:
            context.config = config
            context.store = self.store
        self.ctx = context
        self.report: Optional[PipelineReport] = None
        #: generation the serving plane is bound to (None = flat layout)
        self.serving_generation: Optional[int] = None
        self.install_faults()

    def install_faults(self) -> None:
        """Install the config's fault-injection plan process-wide.

        A no-op when ``config.faults`` is empty or disabled, so normal
        pipelines never touch the injector (and never clobber a plan a
        test installed directly).
        """
        specs = self.config.faults.fault_specs()
        if specs:
            fault_harness.install_plan(specs)

    # -- the full offline run ------------------------------------------------

    def run(self, verbose: bool = False) -> PipelineReport:
        """Execute every stage in order; persist config + report at the end."""
        stage_reports: List[StageReport] = []
        for stage_cls in DEFAULT_STAGES:
            stage = stage_cls()
            start = time.perf_counter()
            info = stage.run(self.ctx) or {}
            elapsed = time.perf_counter() - start
            stage_reports.append(StageReport(name=stage.name,
                                             wall_seconds=elapsed,
                                             info=jsonify(info)))
            if verbose:
                print("  [%-5s] %6.2fs  %s"
                      % (stage.name, elapsed, info.get("summary", "")))
        self.report = PipelineReport(pipeline=self.config.name,
                                     stages=stage_reports)
        if self.store is not None:
            self.store.save_config(self.config)
            self.store.save_report(self.report)
            # snapshot the finished run into a checksummed generation;
            # a crash before this line leaves the previous generation
            # (if any) as the newest published one
            self.serving_generation = self.store.publish_generation()
        return self.report

    # -- the serving side ----------------------------------------------------

    @classmethod
    def from_artifacts(cls, directory,
                       generation: Optional[int] = None) -> "Pipeline":
        """Reload a finished run for model-free serving.

        Only the config and the persisted indices are needed; the
        retriever and engine come up exactly as configured, and
        :meth:`serve` answers requests without any retraining.

        With ``generations/`` present the whole pipeline loads from
        *one* generation — ``generation`` explicitly, or the newest
        published one — after checksum-verifying every file it carries
        (:class:`~repro.pipeline.artifacts.ArtifactCorruptionError`
        names the offending file and generation).  Pre-generation
        artifact directories fall back to the flat layout.
        """
        store = ArtifactStore(directory, create=False)
        chosen = (generation if generation is not None
                  else store.latest_generation())
        if chosen is not None:
            return cls._from_generation(store, chosen)
        if not store.has(ArtifactStore.CONFIG):
            raise FileNotFoundError("no %s under %s — not a pipeline "
                                    "artifact directory"
                                    % (ArtifactStore.CONFIG, directory))
        config = store.load_config()
        pipeline = cls(config, artifact_dir=str(directory))
        ctx = pipeline.ctx
        ctx.index_set = IndexSet.load(store.path(ArtifactStore.INDICES))
        if store.has(ArtifactStore.CONTROL_INDICES):
            ctx.control_index_set = IndexSet.load(
                store.path(ArtifactStore.CONTROL_INDICES))
        # retriever + engine come up lazily through the properties below,
        # from the same config the offline run persisted
        if store.has(ArtifactStore.REPORT):
            pipeline.report = store.load_report()
        return pipeline

    @classmethod
    def _from_generation(cls, store: ArtifactStore,
                         generation: int) -> "Pipeline":
        """Stand a pipeline up from one published, verified generation."""
        manifest = store.verify_generation(generation)
        files = manifest.get("files", {})
        for required in (ArtifactStore.CONFIG, ArtifactStore.INDICES):
            if required not in files:
                raise FileNotFoundError(
                    "generation %06d under %s does not carry %s (has: %s)"
                    % (generation, store.root, required,
                       ", ".join(sorted(files)) or "none"))
        base = store.generation_dir(generation)
        config = PipelineConfig.load(base / ArtifactStore.CONFIG)
        pipeline = cls(config, artifact_dir=str(store.root))
        pipeline.serving_generation = generation
        ctx = pipeline.ctx
        ctx.index_set = IndexSet.load(base / ArtifactStore.INDICES)
        if ArtifactStore.CONTROL_INDICES in files:
            ctx.control_index_set = IndexSet.load(
                base / ArtifactStore.CONTROL_INDICES)
        if ArtifactStore.REPORT in files:
            pipeline.report = PipelineReport.load(
                base / ArtifactStore.REPORT)
        return pipeline

    def hot_swap(self, generation: Optional[int] = None) -> int:
        """Swap the serving plane onto another published generation.

        Verifies the target generation (default: the newest published
        one), loads its indices, builds a fresh retriever, and — when a
        live engine exists — flips it atomically via
        :meth:`~repro.serving.engine.ServingEngine.swap_retriever`:
        in-flight micro-batches finish on the old index, the next batch
        snapshot sees the new one, and the response cache is cleared so
        no stale entries cross the swap.  Returns the generation now
        serving.
        """
        if self.store is None:
            raise RuntimeError("hot_swap needs an artifact directory")
        chosen = (generation if generation is not None
                  else self.store.latest_generation())
        if chosen is None:
            raise FileNotFoundError("no published generations under %s"
                                    % self.store.root)
        manifest = self.store.verify_generation(chosen)
        if ArtifactStore.INDICES not in manifest.get("files", {}):
            raise FileNotFoundError(
                "generation %06d under %s does not carry %s"
                % (chosen, self.store.root, ArtifactStore.INDICES))
        index_set = IndexSet.load(
            self.store.generation_dir(chosen) / ArtifactStore.INDICES)
        retriever = self.ctx.make_retriever(index_set)
        self.ctx.index_set = index_set
        self.ctx.retriever = retriever
        self.serving_generation = chosen
        if self.ctx.engine is not None:
            self.ctx.engine.swap_retriever(retriever, generation=chosen)
        return chosen

    @property
    def retriever(self) -> TwoLayerRetriever:
        if self.ctx.retriever is None:
            if self.ctx.index_set is None:
                raise RuntimeError("no indices yet — run() the pipeline or "
                                   "load one via from_artifacts()")
            self.ctx.retriever = self.ctx.make_retriever(self.ctx.index_set)
        return self.ctx.retriever

    @property
    def engine(self) -> ServingEngine:
        if self.ctx.engine is None:
            serving = self.config.serving
            index_cfg = self.config.index
            self.ctx.engine = ServingEngine(
                self.retriever, max_batch_size=serving.max_batch_size,
                cache_size=serving.cache_size,
                num_shards=index_cfg.serving_shards,
                shard_parallelism=index_cfg.shard_parallelism,
                slice_retries=serving.slice_retries,
                breaker=serving.make_breaker(),
                generation=self.serving_generation or 0)
        return self.ctx.engine

    def serve(self, queries: Sequence[int],
              preclicks: Optional[Sequence[Sequence[int]]] = None,
              k: Optional[int] = None):
        """Answer a request stream through the micro-batching engine."""
        return self.engine.serve(queries, preclicks,
                                 k=k if k is not None else self.config.serving.k)

    def make_admission_controller(self, num_workers: int = 1,
                                  keep_results: bool = False):
        """An :class:`AdmissionController` over this pipeline's engine.

        Configured entirely from the persisted ``serving.admission_*``
        keys — the SLO-aware front of the serving plane for callers
        (e.g. ``python -m repro serve --qps``) that want
        arrival-timestamped, shed-aware serving rather than the raw
        bulk path.
        """
        from repro.serving.admission import AdmissionController
        return AdmissionController(self.engine, num_workers=num_workers,
                                   keep_results=keep_results,
                                   **self.config.serving.admission_kwargs())

    # -- artifact-restored stage reruns (CLI ``index`` / ``eval``) -----------

    def _resolve_artifact(self, name: str):
        """Path of ``name`` honouring the bound generation.

        Returns the (verified) generation copy when this pipeline is
        bound to one and the generation carries the file, the flat copy
        otherwise, or ``None`` when the artifact is absent everywhere.
        """
        if self.store is None:
            return None
        if self.serving_generation is not None:
            manifest = self.store.load_manifest(self.serving_generation)
            if name in manifest.get("files", {}):
                return self.store.resolve(
                    name, generation=self.serving_generation)
        return self.store.path(name) if self.store.has(name) else None

    def _restore_model_context(self, purpose: str) -> None:
        """Rebuild data/graphs from the config and reload checkpoints.

        Shared preamble of the artifact-based stage reruns: the dataset
        and graphs are deterministic functions of the config, the model
        (and the A/B control model, when persisted) comes from the
        checkpoint files — from the bound generation when there is one.
        """
        from repro.pipeline.stages import DataStage, GraphStage
        DataStage().run(self.ctx)
        GraphStage().run(self.ctx)
        if self.ctx.model is None:
            model_path = self._resolve_artifact(ArtifactStore.MODEL)
            if model_path is None:
                raise FileNotFoundError(
                    "no model checkpoint to %s — run the pipeline with an "
                    "artifact directory first" % purpose)
            from repro.io import load_model
            self.ctx.model = load_model(model_path, self.ctx.train_graph)
        if self.ctx.control_model is None:
            control_path = self._resolve_artifact(ArtifactStore.CONTROL_MODEL)
            if control_path is not None:
                from repro.io import load_model
                self.ctx.control_model = load_model(control_path,
                                                    self.ctx.train_graph)

    def rebuild_indices(self) -> Dict[str, Any]:
        """Re-run the index stage from persisted artifacts — no retraining.

        Rebuilds the (deterministic) dataset and graphs from the
        config, reloads the model checkpoint (and the A/B control
        checkpoint when present), runs :class:`IndexStage` through the
        currently-configured backend, and persists the fresh indices
        back into the artifact store alongside the updated config.
        This is the offline refresh step of the paper's lifecycle: new
        index layout (e.g. ``index.backend="sharded"``), same model.
        """
        from repro.pipeline.stages import IndexStage
        self._restore_model_context("rebuild indices from")
        info = jsonify(IndexStage().run(self.ctx))
        # the new indices invalidate any retriever/engine built over the
        # old ones; they come back lazily through the properties
        self.ctx.retriever = None
        self.ctx.engine = None
        if self.store is not None:
            self.store.save_config(self.config)
            # the refreshed indices + config become a new generation, so
            # serving processes can hot-swap onto them (or roll back)
            self.serving_generation = self.store.publish_generation()
            info["generation"] = self.serving_generation
        return info

    # -- standalone re-evaluation (CLI ``eval``) -----------------------------

    def evaluate(self) -> Dict[str, Any]:
        """Recompute the eval stage from persisted artifacts.

        Rebuilds the (deterministic) dataset and graphs from the
        config, reloads the model checkpoint — indices are already
        loaded when this pipeline came from :meth:`from_artifacts` —
        and runs :class:`EvalStage`.
        """
        self._restore_model_context("evaluate")
        if self.ctx.index_set is None:
            if self.store is None or not self.store.has(ArtifactStore.INDICES):
                raise FileNotFoundError("no indices to evaluate against")
            self.ctx.index_set = IndexSet.load(
                self.store.path(ArtifactStore.INDICES))
        return jsonify(EvalStage().run(self.ctx))
