"""The on-disk artifact layout of one pipeline run.

A run writes everything a serving process needs into one directory —
the paper's ship-to-serving step (Fig. 3) as a filesystem contract:

    <artifact_dir>/
        config.json          the validated PipelineConfig
        model.npz            AMCAD checkpoint (repro.io.save_model)
        control_model.npz    A/B control checkpoint (only with eval.ab_control)
        indices.npz          the built IndexSet (IndexSet.save)
        control_indices.npz  control-channel indices (only with eval.ab_control)
        report.json          the structured PipelineReport
        checkpoint.npz       mid-training resume state (Trainer checkpoints)
        generations/
            000001/
                MANIFEST.json    sha256 + size per file, publish metadata
                config.json, model.npz, indices.npz, ...
            000002/
                ...

The flat files are the *working copies* the stages write as they go;
``publish_generation()`` snapshots them into the next ``generations/``
slot.  Publishing is crash-safe: files are copied into a hidden
staging directory, the checksummed ``MANIFEST.json`` is written last,
and a single ``os.replace`` renames staging to ``NNNNNN/`` — a
generation is either fully visible or absent, never torn.  Readers
(``Pipeline.from_artifacts``, ``python -m repro serve/eval``) resolve
the newest *valid* generation and verify checksums on load, falling
back to the flat layout for pre-generation artifact directories.
``gc(keep=N)`` bounds disk growth and refuses to remove the live
generation.
"""

from __future__ import annotations

import json
import os
import pathlib
import shutil
import time
from typing import Any, Dict, List, Optional

from repro.common import atomic_write_text, file_sha256
from repro.pipeline.config import PipelineConfig
from repro.pipeline.report import PipelineReport
from repro.testing.faults import fault_point

_MANIFEST_VERSION = 1


class ArtifactCorruptionError(RuntimeError):
    """A stored artifact failed validation against its manifest."""

    def __init__(self, message: str, path: Optional[pathlib.Path] = None,
                 generation: Optional[int] = None):
        self.path = pathlib.Path(path) if path is not None else None
        self.generation = generation
        super().__init__(message)


class ArtifactStore:
    """Named artifacts under one directory, plus published generations."""

    CONFIG = "config.json"
    MODEL = "model.npz"
    CONTROL_MODEL = "control_model.npz"
    INDICES = "indices.npz"
    CONTROL_INDICES = "control_indices.npz"
    REPORT = "report.json"
    CHECKPOINT = "checkpoint.npz"

    GENERATIONS_DIR = "generations"
    MANIFEST = "MANIFEST.json"
    #: flat files snapshotted by default when publishing a generation
    PUBLISHABLE = (CONFIG, MODEL, CONTROL_MODEL, INDICES, CONTROL_INDICES,
                   REPORT)

    def __init__(self, root, create: bool = True):
        self.root = pathlib.Path(root)
        if create:
            self.root.mkdir(parents=True, exist_ok=True)
        elif not self.root.is_dir():
            raise FileNotFoundError("artifact directory %s does not exist"
                                    % self.root)

    def path(self, name: str) -> pathlib.Path:
        return self.root / name

    def has(self, name: str) -> bool:
        return self.path(name).exists()

    def files(self) -> List[str]:
        """Names of the flat artifacts currently present."""
        return sorted(p.name for p in self.root.iterdir() if p.is_file())

    # -- config --------------------------------------------------------------

    def save_config(self, config: PipelineConfig) -> pathlib.Path:
        return config.save(self.path(self.CONFIG))

    def load_config(self) -> PipelineConfig:
        return PipelineConfig.load(self.path(self.CONFIG))

    # -- report --------------------------------------------------------------

    def save_report(self, report: PipelineReport) -> pathlib.Path:
        return report.save(self.path(self.REPORT))

    def load_report(self) -> PipelineReport:
        return PipelineReport.load(self.path(self.REPORT))

    # -- generations ---------------------------------------------------------

    @property
    def generations_root(self) -> pathlib.Path:
        return self.root / self.GENERATIONS_DIR

    def generation_dir(self, generation: int) -> pathlib.Path:
        return self.generations_root / ("%06d" % generation)

    def generations(self) -> List[int]:
        """Published (valid: manifest present) generation ids, ascending."""
        root = self.generations_root
        if not root.is_dir():
            return []
        found = []
        for entry in root.iterdir():
            if (entry.is_dir() and entry.name.isdigit()
                    and (entry / self.MANIFEST).is_file()):
                found.append(int(entry.name))
        return sorted(found)

    def latest_generation(self) -> Optional[int]:
        generations = self.generations()
        return generations[-1] if generations else None

    def _next_generation_id(self) -> int:
        root = self.generations_root
        taken = [int(p.name) for p in root.iterdir()
                 if p.is_dir() and p.name.isdigit()] if root.is_dir() else []
        return max(taken, default=0) + 1

    def _sweep_staging(self) -> None:
        """Drop staging directories a crashed publish left behind."""
        root = self.generations_root
        if not root.is_dir():
            return
        for entry in root.iterdir():
            if entry.is_dir() and entry.name.startswith(".staging-"):
                shutil.rmtree(entry, ignore_errors=True)

    def publish_generation(self, names: Optional[List[str]] = None) -> int:
        """Snapshot the flat artifacts into the next ``generations/`` slot.

        Copies the files into a hidden staging directory, writes the
        checksummed manifest last, then atomically renames staging into
        place — a crash (or an ``"artifacts.publish"`` fault) at any
        point leaves no partially visible generation, and prior
        generations keep serving.  Returns the new generation id.
        """
        if names is None:
            names = [n for n in self.PUBLISHABLE if self.has(n)]
        missing = [n for n in names if not self.has(n)]
        if missing:
            raise FileNotFoundError(
                "cannot publish generation: missing artifact(s) %s under %s"
                % (", ".join(missing), self.root))
        if not names:
            raise FileNotFoundError(
                "cannot publish generation: no artifacts under %s" % self.root)
        self._sweep_staging()
        self.generations_root.mkdir(parents=True, exist_ok=True)
        generation = self._next_generation_id()
        staging = self.generations_root / (".staging-%06d" % generation)
        try:
            staging.mkdir()
            manifest: Dict[str, Any] = {
                "manifest_version": _MANIFEST_VERSION,
                "generation": generation,
                "created_unix": time.time(),
                "files": {},
            }
            for name in names:
                source = self.path(name)
                shutil.copy2(source, staging / name)
                manifest["files"][name] = {
                    "sha256": file_sha256(staging / name),
                    "bytes": (staging / name).stat().st_size,
                }
            (staging / self.MANIFEST).write_text(
                json.dumps(manifest, indent=2, sort_keys=True) + "\n")
            fault_point("artifacts.publish", generation=generation)
            os.replace(staging, self.generation_dir(generation))
        except BaseException:
            shutil.rmtree(staging, ignore_errors=True)
            raise
        return generation

    def load_manifest(self, generation: int) -> Dict[str, Any]:
        path = self.generation_dir(generation) / self.MANIFEST
        if not path.is_file():
            raise FileNotFoundError(
                "generation %06d has no manifest under %s"
                % (generation, self.generations_root))
        try:
            return json.loads(path.read_text())
        except (ValueError, UnicodeDecodeError) as exc:
            raise ArtifactCorruptionError(
                "generation %06d manifest %s is unreadable: %s"
                % (generation, path, exc),
                path=path, generation=generation) from exc

    def verify_generation(self, generation: int,
                          names: Optional[List[str]] = None
                          ) -> Dict[str, Any]:
        """Checksum-verify a generation; raises naming file + generation."""
        manifest = self.load_manifest(generation)
        directory = self.generation_dir(generation)
        entries = manifest.get("files", {})
        for name in (names if names is not None else sorted(entries)):
            if name not in entries:
                raise ArtifactCorruptionError(
                    "generation %06d has no artifact %r (manifest lists: %s)"
                    % (generation, name, ", ".join(sorted(entries)) or "none"),
                    path=directory / name, generation=generation)
            path = directory / name
            expected = entries[name]
            if not path.is_file():
                raise ArtifactCorruptionError(
                    "artifact %s missing from generation %06d"
                    % (path, generation), path=path, generation=generation)
            size = path.stat().st_size
            if size != expected["bytes"]:
                raise ArtifactCorruptionError(
                    "artifact %s in generation %06d is %d bytes, manifest "
                    "says %d — truncated or torn write"
                    % (path, generation, size, expected["bytes"]),
                    path=path, generation=generation)
            digest = file_sha256(path)
            if digest != expected["sha256"]:
                raise ArtifactCorruptionError(
                    "artifact %s in generation %06d fails its checksum "
                    "(sha256 %s != manifest %s)"
                    % (path, generation, digest, expected["sha256"]),
                    path=path, generation=generation)
        return manifest

    def resolve(self, name: str, generation: Optional[int] = None,
                verify: bool = True) -> pathlib.Path:
        """Path of ``name`` in a generation, or the flat copy.

        ``generation=None`` prefers the newest published generation
        that carries the file and falls back to the flat layout (pre-
        generation artifact directories).  An explicit generation must
        exist and carry the file.  With ``verify`` the file is
        checksummed against the manifest before the path is returned.
        """
        if generation is None:
            for candidate in reversed(self.generations()):
                try:
                    manifest = self.load_manifest(candidate)
                except ArtifactCorruptionError:
                    continue
                if name in manifest.get("files", {}):
                    if verify:
                        self.verify_generation(candidate, names=[name])
                    return self.generation_dir(candidate) / name
            return self.path(name)
        if generation not in self.generations():
            raise FileNotFoundError(
                "generation %06d is not published under %s (have: %s)"
                % (generation, self.generations_root,
                   ", ".join("%06d" % g for g in self.generations())
                   or "none"))
        if verify:
            self.verify_generation(generation, names=[name])
        return self.generation_dir(generation) / name

    def gc(self, keep: int, live: Optional[int] = None) -> List[int]:
        """Prune old generations, keeping the newest ``keep``.

        The ``live`` generation (default: the latest) is never removed
        even if it falls outside the keep window.  Returns the removed
        generation ids.
        """
        if keep < 1:
            raise ValueError("gc: keep must be >= 1, got %d" % keep)
        generations = self.generations()
        if live is None:
            live = generations[-1] if generations else None
        elif live not in generations:
            raise ValueError("gc: live generation %06d is not published"
                             % live)
        removable = generations[:-keep] if keep < len(generations) else []
        removed = []
        for generation in removable:
            if generation == live:
                continue
            shutil.rmtree(self.generation_dir(generation), ignore_errors=True)
            removed.append(generation)
        self._sweep_staging()
        return removed

    def __repr__(self) -> str:
        generations = self.generations()
        tail = (", generations=%s" % len(generations)) if generations else ""
        return "ArtifactStore(%s: %s%s)" % (self.root, ", ".join(self.files()),
                                            tail)
