"""The on-disk artifact layout of one pipeline run.

A run writes everything a serving process needs into one directory —
the paper's ship-to-serving step (Fig. 3) as a filesystem contract:

    <artifact_dir>/
        config.json          the validated PipelineConfig
        model.npz            AMCAD checkpoint (repro.io.save_model)
        control_model.npz    A/B control checkpoint (only with eval.ab_control)
        indices.npz          the built IndexSet (IndexSet.save)
        control_indices.npz  control-channel indices (only with eval.ab_control)
        report.json          the structured PipelineReport

``Pipeline.from_artifacts(dir)`` reloads config + indices and serves
without the model or any retraining; ``python -m repro eval`` reloads
the checkpoint as well to recompute offline metrics.
"""

from __future__ import annotations

import pathlib
from typing import List

from repro.pipeline.config import PipelineConfig
from repro.pipeline.report import PipelineReport


class ArtifactStore:
    """Named artifacts under one directory."""

    CONFIG = "config.json"
    MODEL = "model.npz"
    CONTROL_MODEL = "control_model.npz"
    INDICES = "indices.npz"
    CONTROL_INDICES = "control_indices.npz"
    REPORT = "report.json"

    def __init__(self, root, create: bool = True):
        self.root = pathlib.Path(root)
        if create:
            self.root.mkdir(parents=True, exist_ok=True)
        elif not self.root.is_dir():
            raise FileNotFoundError("artifact directory %s does not exist"
                                    % self.root)

    def path(self, name: str) -> pathlib.Path:
        return self.root / name

    def has(self, name: str) -> bool:
        return self.path(name).exists()

    def files(self) -> List[str]:
        """Names of the artifacts currently present."""
        return sorted(p.name for p in self.root.iterdir() if p.is_file())

    # -- config --------------------------------------------------------------

    def save_config(self, config: PipelineConfig) -> pathlib.Path:
        return config.save(self.path(self.CONFIG))

    def load_config(self) -> PipelineConfig:
        return PipelineConfig.load(self.path(self.CONFIG))

    # -- report --------------------------------------------------------------

    def save_report(self, report: PipelineReport) -> pathlib.Path:
        return report.save(self.path(self.REPORT))

    def load_report(self) -> PipelineReport:
        return PipelineReport.load(self.path(self.REPORT))

    def __repr__(self) -> str:
        return "ArtifactStore(%s: %s)" % (self.root, ", ".join(self.files()))
