"""The ``python -m repro`` command line.

Subcommands cover the full lifecycle:

- ``run``    — execute a configured pipeline end to end and persist
  its artifacts (``--config config.json``, dotted ``--set`` overrides);
- ``serve``  — reload a finished run's artifacts and answer retrieval
  requests with no model and no retraining;
- ``index``  — rebuild (and save) the inverted indices from persisted
  artifacts without retraining, e.g. to re-shard or switch backends;
- ``eval``   — recompute the offline metrics from persisted artifacts;
- ``gc``     — prune old published generations (never the live one);
- ``models`` — list the registered model variant names.

Examples::

    python -m repro run --config examples/configs/tiny.json
    python -m repro run --config c.json --set training.steps=500 \
        --set model.name=amcad_e --artifacts artifacts/euclidean
    python -m repro serve --artifacts artifacts/tiny --queries 3,14,15
    python -m repro serve --artifacts artifacts/tiny --requests 64 \
        --qps 500 --set serving.admission_deadline_ms=20
    python -m repro index --artifacts artifacts/tiny \
        --set index.backend=sharded --set index.num_shards=4
    python -m repro eval --artifacts artifacts/tiny
    python -m repro serve --artifacts artifacts/tiny --generation 2
    python -m repro gc --artifacts artifacts/tiny --keep 3
"""

from __future__ import annotations

import argparse
import json
from typing import List, Optional, Sequence

import numpy as np

from repro.models.amcad import list_models
from repro.pipeline.config import PipelineConfig
from repro.pipeline.core import Pipeline


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="AMCAD reproduction pipeline: offline training -> "
                    "index build -> serving, driven by one JSON config.")
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run a configured pipeline end to end")
    run.add_argument("--config", metavar="PATH",
                     help="pipeline config JSON (default: built-in defaults)")
    run.add_argument("--artifacts", metavar="DIR",
                     help="artifact directory (overrides config.artifact_dir)")
    run.add_argument("--set", dest="overrides", action="append", default=[],
                     metavar="SECTION.KEY=VALUE",
                     help="override a config value, e.g. training.steps=500 "
                          "(repeatable; values parsed as JSON)")
    run.add_argument("--quiet", action="store_true",
                     help="suppress per-stage progress lines")

    serve = sub.add_parser(
        "serve", help="reload artifacts and serve retrieval requests")
    serve.add_argument("--artifacts", metavar="DIR", required=True)
    serve.add_argument("--generation", type=int, default=None, metavar="N",
                       help="serve from this published generation "
                            "(default: the newest; pre-generation "
                            "directories use the flat layout)")
    serve.add_argument("--queries", metavar="Q1,Q2,...",
                       help="comma-separated query ids (default: random)")
    serve.add_argument("--preclicks", metavar="P;P;...",
                       help="per-request pre-click items: semicolon-separated "
                            "comma lists aligned with --queries, e.g. "
                            "'1,2;;9' (default: none)")
    serve.add_argument("--requests", type=int, default=8,
                       help="number of random requests when --queries is "
                            "not given (default: %(default)s)")
    serve.add_argument("--k", type=int, default=None,
                       help="ads per request (default: config serving.k)")
    serve.add_argument("--qps", type=float, default=None,
                       help="offer the requests at this QPS (Poisson "
                            "arrivals on a virtual clock) through the "
                            "SLO-aware admission controller instead of the "
                            "raw bulk path; prints queue latency "
                            "percentiles and the shed count")
    serve.add_argument("--set", dest="overrides", action="append",
                       default=[], metavar="SECTION.KEY=VALUE",
                       help="override a serving-time config value, e.g. "
                            "serving.admission_deadline_ms=20 (serving.* "
                            "and faults.* sections)")
    serve.add_argument("--seed", type=int, default=0)

    index = sub.add_parser(
        "index", help="rebuild (and save) indices from artifacts without "
                      "retraining")
    index.add_argument("--artifacts", metavar="DIR", required=True)
    index.add_argument("--set", dest="overrides", action="append",
                       default=[], metavar="SECTION.KEY=VALUE",
                       help="override an index-time config value, e.g. "
                            "index.backend=sharded index.num_shards=4")

    evaluate = sub.add_parser(
        "eval", help="recompute offline metrics from artifacts")
    evaluate.add_argument("--artifacts", metavar="DIR", required=True)
    evaluate.add_argument("--set", dest="overrides", action="append",
                          default=[], metavar="SECTION.KEY=VALUE",
                          help="override an eval-time config value, e.g. "
                               "eval.auc_samples=1000")

    gc = sub.add_parser(
        "gc", help="prune old published generations (never the live one)")
    gc.add_argument("--artifacts", metavar="DIR", required=True)
    gc.add_argument("--keep", type=int, required=True, metavar="N",
                    help="number of newest generations to keep")

    sub.add_parser("models", help="list the registered model variants")
    return parser


def _cmd_run(args) -> int:
    config = (PipelineConfig.load(args.config) if args.config
              else PipelineConfig())
    if args.overrides:
        config = config.with_overrides(args.overrides)
    pipeline = Pipeline(config, artifact_dir=args.artifacts)
    if not args.quiet:
        print("running pipeline %r%s" % (
            config.name,
            " -> %s" % pipeline.store.root if pipeline.store else
            " (in memory; set artifact_dir or --artifacts to persist)"))
    report = pipeline.run(verbose=not args.quiet)
    if args.quiet:
        print(report.summary())
    else:
        # the verbose run already printed one line per stage
        print("pipeline %r done — %d stages, %.1fs total"
              % (config.name, len(report.stages), report.total_seconds))
    if pipeline.store is not None:
        print("artifacts: %s (%s)" % (pipeline.store.root,
                                      ", ".join(pipeline.store.files())))
        if pipeline.serving_generation is not None:
            print("published generation %06d" % pipeline.serving_generation)
    return 0


def _parse_requests(args, num_queries: int, num_items: int):
    if args.queries:
        queries = [int(q) for q in args.queries.split(",") if q.strip()]
        bad = [q for q in queries if not 0 <= q < num_queries]
        if bad:
            raise SystemExit("query id(s) %s out of range [0, %d)"
                             % (bad, num_queries))
        preclicks: List[List[int]] = [[] for _ in queries]
        if args.preclicks:
            groups = args.preclicks.split(";")
            if len(groups) != len(queries):
                raise SystemExit("--preclicks has %d group(s) but --queries "
                                 "has %d" % (len(groups), len(queries)))
            preclicks = [[int(p) for p in group.split(",") if p.strip()]
                         for group in groups]
            bad = [p for group in preclicks for p in group
                   if not 0 <= p < num_items]
            if bad:
                raise SystemExit("pre-click item id(s) %s out of range "
                                 "[0, %d)" % (bad, num_items))
        return queries, preclicks
    if args.preclicks:
        raise SystemExit("--preclicks requires --queries (random requests "
                         "draw their own pre-clicks)")
    rng = np.random.default_rng(args.seed)
    queries = [int(q) for q in rng.integers(num_queries, size=args.requests)]
    preclicks = [[int(p) for p in rng.integers(num_items, size=2)]
                 for _ in queries]
    return queries, preclicks


def _cmd_serve(args) -> int:
    pipeline = Pipeline.from_artifacts(args.artifacts,
                                       generation=args.generation)
    # faults.* is allowed alongside serving.*: injecting serving-time
    # faults (degraded shards, slice errors) is exactly what the chaos
    # harness does, and the plan never changes what the artifacts mean
    _apply_section_overrides(pipeline, args.overrides,
                             ("serving", "faults"))
    if pipeline.serving_generation is not None:
        print("serving generation %06d" % pipeline.serving_generation)
    sim_cfg = pipeline.config.data.simulator_config()
    queries, preclicks = _parse_requests(args, sim_cfg.num_queries,
                                         sim_cfg.num_items)
    if args.qps is not None:
        return _serve_admitted(pipeline, args, queries, preclicks)
    results = pipeline.serve(queries, preclicks, k=args.k)
    for query, items, result in zip(queries, preclicks, results):
        ads = ", ".join("%d (%.3f)" % (ad, score)
                        for ad, score in zip(result.ads, result.scores))
        print("query %-5d preclicks %-12s -> %s"
              % (query, items or "[]", ads or "(no ads)"))
    stats = pipeline.engine.stats
    print("served %d request(s) in %d micro-batch(es), %.3f ms/request"
          % (stats.requests, stats.batches, 1000.0 * stats.service_seconds))
    if stats.degraded:
        print("DEGRADED: %d request(s) in %d batch(es) got empty results "
              "after %d slice error(s)"
              % (stats.degraded_requests, stats.degraded_batches,
                 stats.slice_errors))
    return 0


def _serve_admitted(pipeline, args, queries, preclicks) -> int:
    """Route the requests through the SLO-aware admission controller."""
    if not args.qps > 0:
        raise SystemExit("--qps must be > 0, got %r" % args.qps)
    controller = pipeline.make_admission_controller(keep_results=True)
    if args.k is not None:
        controller.k = args.k
    rng = np.random.default_rng(args.seed)
    arrival = 0.0
    for query, items in zip(queries, preclicks):
        arrival += float(rng.exponential(1.0 / args.qps))
        controller.offer(arrival, query, items)
    controller.drain()
    for request, result in controller.results:
        ads = ", ".join("%d (%.3f)" % (ad, score)
                        for ad, score in zip(result.ads, result.scores))
        print("query %-5d preclicks %-12s -> %s"
              % (request.query, list(request.preclicks) or "[]",
                 ads or "(no ads)"))
    stats = controller.stats
    latency = stats.latency_percentiles()
    print("admitted %d/%d request(s) at %.0f qps (shed %d: %d queue-full, "
          "%d deadline, %d breaker)"
          % (stats.served, stats.offered, args.qps, stats.shed,
             stats.shed_queue, stats.shed_deadline, stats.shed_breaker))
    engine_stats = pipeline.engine.stats
    if engine_stats.degraded:
        print("DEGRADED: %d request(s) got empty results after %d slice "
              "error(s)" % (engine_stats.degraded_requests,
                            engine_stats.slice_errors))
    if controller.breaker is not None:
        print("breaker: %s" % controller.breaker.summary())
    print("latency p50/p95/p99: %.3f / %.3f / %.3f ms  (queue deadline "
          "%.0f ms, max batch %d)"
          % (1000.0 * latency["p50"], 1000.0 * latency["p95"],
             1000.0 * latency["p99"], 1000.0 * controller.deadline,
             controller.max_batch))
    return 0


def _apply_section_overrides(pipeline, overrides, sections) -> None:
    """Apply ``--set`` overrides restricted to the named config sections.

    The artifact-based subcommands only accept overrides of the sections
    they re-run: everything else (data, graph, model geometry, training)
    is baked into the persisted model and indices, so changing it would
    silently disagree with the artifacts.
    """
    if not overrides:
        return
    if isinstance(sections, str):
        sections = (sections,)
    allowed = tuple(section + "." for section in sections)
    foreign = [a for a in overrides
               if not a.strip().startswith(allowed)]
    if foreign:
        names = "/".join(s + ".*" for s in sections)
        raise SystemExit("%s only accepts %s overrides (the artifacts "
                         "were produced with the persisted config); got %s"
                         % (sections[0], names, ", ".join(map(repr, foreign))))
    pipeline.config = pipeline.ctx.config = \
        pipeline.config.with_overrides(overrides)
    # a fresh fault plan in the overrides must reach the injector
    pipeline.install_faults()


def _cmd_index(args) -> int:
    pipeline = Pipeline.from_artifacts(args.artifacts)
    # re-sharding/re-backending is exactly the model-free refresh this
    # command exists for
    _apply_section_overrides(pipeline, args.overrides, "index")
    info = pipeline.rebuild_indices()
    print(json.dumps(info, indent=2, sort_keys=True))
    if pipeline.store is not None:
        print("artifacts: %s (%s)" % (pipeline.store.root,
                                      ", ".join(pipeline.store.files())))
    return 0


def _cmd_eval(args) -> int:
    pipeline = Pipeline.from_artifacts(args.artifacts)
    _apply_section_overrides(pipeline, args.overrides, "eval")
    info = pipeline.evaluate()
    print(json.dumps(info, indent=2, sort_keys=True))
    return 0


def _cmd_gc(args) -> int:
    from repro.pipeline.artifacts import ArtifactStore
    store = ArtifactStore(args.artifacts, create=False)
    generations = store.generations()
    if not generations:
        print("no published generations under %s" % store.root)
        return 0
    live = store.latest_generation()
    removed = store.gc(args.keep)
    kept = store.generations()
    print("removed %d generation(s)%s; kept %s (live: %06d)"
          % (len(removed),
             " (%s)" % ", ".join("%06d" % g for g in removed)
             if removed else "",
             ", ".join("%06d" % g for g in kept), live))
    return 0


def _cmd_models(_args) -> int:
    for name in list_models():
        print(name)
    print("product:<SIG>   (any signature over E/H/S/U, e.g. product:HS)")
    print()
    print("every variant runs on an encoder compute plane: "
          "model.compute_plane = 'frontier' (dedup-encode-gather, default) "
          "or 'recursive' (parity reference)")
    print("geometry kernels are selected by model.kernels = 'auto' "
          "(compiled when numba is installed, numpy otherwise, default), "
          "'numpy', or 'compiled' (requires the [compiled] extra)")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handler = {"run": _cmd_run, "serve": _cmd_serve, "index": _cmd_index,
               "eval": _cmd_eval, "gc": _cmd_gc,
               "models": _cmd_models}[args.command]
    return handler(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
