"""Declarative end-to-end pipeline (offline training → index build → serving).

The deployed system (paper Fig. 3) is a pipeline: offline training
ships embeddings to index builders, which ship indices to serving.
This package makes that lifecycle a first-class API instead of
hand-wired glue:

- :mod:`repro.pipeline.config` — :class:`PipelineConfig`, a validated
  dataclass tree (data / graph / model / training / index / serving /
  eval) with JSON round-trip and ``--set``-style dotted overrides, so
  every experiment in the repo is expressible as one config file;
- :mod:`repro.pipeline.stages` — composable stage objects
  (:class:`DataStage` … :class:`EvalStage`), each producing a named,
  persistable artifact;
- :mod:`repro.pipeline.artifacts` — the :class:`ArtifactStore`
  directory layout (config, checkpoint, indices, report) a serving
  process reloads via :meth:`Pipeline.from_artifacts` without
  retraining (the paper's ship-to-serving step);
- :mod:`repro.pipeline.core` — the :class:`Pipeline` orchestrator and
  the structured :class:`~repro.pipeline.report.PipelineReport`;
- :mod:`repro.pipeline.cli` — the ``python -m repro`` command line
  (``run`` / ``serve`` / ``eval`` / ``models`` subcommands).
"""

from repro.pipeline.config import (
    DataConfig,
    EvalConfig,
    GraphConfig,
    IndexConfig,
    ModelConfig,
    PipelineConfig,
    ServingConfig,
    TrainingConfig,
)
from repro.pipeline.artifacts import ArtifactStore
from repro.pipeline.report import PipelineReport, StageReport
from repro.pipeline.stages import (
    DataStage,
    EvalStage,
    GraphStage,
    IndexStage,
    PipelineContext,
    ServeStage,
    Stage,
    TrainStage,
)
from repro.pipeline.core import Pipeline

__all__ = [
    "PipelineConfig",
    "DataConfig",
    "GraphConfig",
    "ModelConfig",
    "TrainingConfig",
    "IndexConfig",
    "ServingConfig",
    "EvalConfig",
    "ArtifactStore",
    "PipelineReport",
    "StageReport",
    "PipelineContext",
    "Stage",
    "DataStage",
    "GraphStage",
    "TrainStage",
    "IndexStage",
    "ServeStage",
    "EvalStage",
    "Pipeline",
]
