"""Setuptools shim so `pip install -e .` works without the wheel package."""
from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "AMCAD: Adaptive Mixed-Curvature Representation based Advertisement "
        "Retrieval System (ICDE 2022) - full reproduction"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10", "networkx>=3.0"],
    extras_require={
        # optional numba-compiled geometry kernels (model.kernels dial);
        # everything falls back to pure numpy without it
        "compiled": ["numba>=0.57"],
    },
    entry_points={
        "console_scripts": ["repro=repro.pipeline.cli:main"],
    },
)
