"""Table VIII — fixed product-space combinations vs adaptive AMCAD.

The paper compares every 2-subspace signature (H×H, H×E, H×S, E×E,
E×S, S×S, U×U) under the plain product-space recipe against AMCAD's
adaptive U×U.  Shape to check: AMCAD ≥ the best fixed combination, and
the all-Euclidean product (E×E) is the weakest.
"""

import pytest

from repro.bench import run_geometric_model, write_report

SIGNATURES = ("HH", "HE", "HS", "EE", "ES", "SS", "UU")


def test_table08_product_vs_adaptive(benchmark, bench_data):
    def run():
        results = {}
        lines = []
        for signature in SIGNATURES:
            name = "product:%s" % signature
            result = run_geometric_model(name, bench_data)
            results[signature] = result
            lines.append(result.row())
        amcad = run_geometric_model("amcad", bench_data)
        results["amcad"] = amcad
        lines.append(amcad.row())

        euclidean_product = results["EE"]
        best_fixed = max((r for s, r in results.items() if s != "amcad"),
                         key=lambda r: r.next_auc)
        lines.append("")
        lines.append("best fixed signature: %s (auc %.2f); amcad auc %.2f"
                     % (best_fixed.name, best_fixed.next_auc, amcad.next_auc))
        lines.append("paper: E x E weakest (93.15), S x S best fixed (93.53), "
                     "AMCAD U x U best overall (93.68)")
        # robust paper shapes at our scale: the signature choice moves
        # AUC only within a tight band (paper: 0.4 points on a 93-point
        # base), and the all-Euclidean product never leads it by a
        # resolvable margin
        aucs = [r.next_auc for s, r in results.items() if s != "amcad"]
        assert max(aucs) - min(aucs) < 6.0, (
            "signature choice should shift AUC only within a narrow band")
        assert best_fixed.next_auc >= euclidean_product.next_auc - 0.5, (
            "the all-Euclidean product must not dominate the curved ones")
        write_report("table08_adaptivity.txt",
                     "Table VIII - product spaces vs adaptive mixture", lines)
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)
