"""Table VIII — fixed product-space combinations vs adaptive AMCAD.

The paper compares every 2-subspace signature (H×H, H×E, H×S, E×E,
E×S, S×S, U×U) under the plain product-space recipe against AMCAD's
adaptive U×U.  Shape to check: AMCAD ≥ the best fixed combination, and
the all-Euclidean product (E×E) is the weakest.

Runs on the declarative pipeline API: one base
:class:`~repro.pipeline.PipelineConfig` per signature (only
``model.name`` varies), with the simulated platform and graphs shared
across runs via :meth:`PipelineContext.fork_data` so the dataset is
built once.
"""

import pytest

from repro.bench import scaled_steps, write_report
from repro.pipeline import Pipeline, PipelineConfig

SIGNATURES = ("HH", "HE", "HS", "EE", "ES", "SS", "UU")


def _config(model_name):
    return PipelineConfig.from_dict({
        "name": "table08-%s" % model_name.replace(":", "-"),
        # the shared bench platform: seed 3, train day 0, eval day 1
        "data": {"days": 2, "train_days": 1, "seed": 3},
        "model": {"name": model_name, "num_subspaces": 2,
                  "subspace_dim": 4, "seed": 1},
        "training": {"steps": scaled_steps(200), "batch_size": 64,
                     "learning_rate": 0.05, "seed": 1},
        # only the two ranking indices, at the bench's evaluation depth
        "index": {"top_k": 300, "relations": ["q2i", "q2a"]},
        "serving": {"enabled": False},
        "eval": {"auc_samples": 400, "ranking_ks": [10, 100, 300],
                 "max_queries": 150},
    })


def test_table08_product_vs_adaptive(benchmark):
    def run():
        shared_ctx = None
        results = {}
        lines = []
        for model_name in ["product:%s" % s for s in SIGNATURES] + ["amcad"]:
            config = _config(model_name)
            context = (shared_ctx.fork_data(config)
                       if shared_ctx is not None else None)
            pipeline = Pipeline(config, context=context)
            report = pipeline.run()
            if shared_ctx is None:
                shared_ctx = pipeline.ctx
            info = report["eval"].info
            key = model_name.split(":")[-1]
            results[key] = info
            lines.append("%-14s auc %6.2f  Q2I hr@10 %5.2f hr@100 %5.2f  "
                         "Q2A hr@10 %5.2f hr@100 %5.2f" % (
                             model_name, info["next_auc"],
                             info["q2i"]["hr@10"], info["q2i"]["hr@100"],
                             info["q2a"]["hr@10"], info["q2a"]["hr@100"]))

        amcad_auc = results["amcad"]["next_auc"]
        fixed = {s: results[s]["next_auc"] for s in SIGNATURES}
        best_fixed = max(fixed, key=fixed.get)
        lines.append("")
        lines.append("best fixed signature: %s (auc %.2f); amcad auc %.2f"
                     % (best_fixed, fixed[best_fixed], amcad_auc))
        lines.append("paper: E x E weakest (93.15), S x S best fixed (93.53), "
                     "AMCAD U x U best overall (93.68)")
        # robust paper shapes at our scale: the signature choice moves
        # AUC only within a tight band (paper: 0.4 points on a 93-point
        # base), and the all-Euclidean product never leads it by a
        # resolvable margin
        assert max(fixed.values()) - min(fixed.values()) < 6.0, (
            "signature choice should shift AUC only within a narrow band")
        assert fixed[best_fixed] >= fixed["EE"] - 0.5, (
            "the all-Euclidean product must not dominate the curved ones")
        write_report("table08_adaptivity.txt",
                     "Table VIII - product spaces vs adaptive mixture", lines)
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)
