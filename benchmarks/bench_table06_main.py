"""Table VI — the main offline comparison.

Reproduces the paper's 14-model table: Next AUC, training time and
Hitrate/nDCG at K ∈ {10, 100, 300} on Q2I and Q2A, for

- Euclidean walk baselines: DeepWalk, LINE(1st), LINE(2nd), Node2Vec,
  Metapath2Vec, plus AMCAD_E;
- constant-curvature models: HyperML, HGCN, AMCAD_H, AMCAD_S, AMCAD_U;
- mixed-curvature models: GIL, Product(best), M2GNN, AMCAD.

Expected shape (paper): every geometric model beats the walk baselines
decisively; constant-curvature ≥ Euclidean AMCAD_E; mixed-curvature ≥
constant curvature; curved training is a constant factor slower than
Euclidean.  Absolute values differ (synthetic graph, ~30000x smaller);
fine-grained orderings inside the geometric family are within noise at
this scale — see EXPERIMENTS.md.
"""

import numpy as np
import pytest

from repro.bench import (
    run_geometric_model,
    run_skipgram_baseline,
    write_report,
)

WALK_BASELINES = ("deepwalk", "line1", "line2", "node2vec", "metapath2vec")
GEOMETRIC_MODELS = (
    ("E", "amcad_e"),
    ("C", "hyperml"),
    ("C", "hgcn"),
    ("C", "amcad_h"),
    ("C", "amcad_s"),
    ("C", "amcad_u"),
    ("M", "gil"),
    ("M", "product:HS"),
    ("M", "m2gnn"),
    ("M", "amcad"),
)


def test_table06_main_comparison(benchmark, bench_data):
    def run():
        results = []
        lines = []
        for name in WALK_BASELINES:
            result = run_skipgram_baseline(name, bench_data)
            results.append(("E", result))
            lines.append("E  " + result.row())
        for family, name in GEOMETRIC_MODELS:
            result = run_geometric_model(name, bench_data)
            results.append((family, result))
            lines.append(family + "  " + result.row())

        by_name = {r.name: r for __, r in results}
        amcad = by_name["amcad"]
        walk_best_hr = max(r.q2i["hr@100"] for __, r in results
                           if r.name in WALK_BASELINES)
        # headline shape: AMCAD decisively beats the walk baselines
        assert amcad.q2i["hr@100"] > walk_best_hr, (
            "AMCAD should beat every walk baseline on Q2I HR@100")
        assert amcad.next_auc > 70.0

        lines.append("")
        lines.append("walk-baseline best Q2I hr@100: %.2f | amcad: %.2f "
                     "(paper improvement over Euclidean: +74%% HR@10)"
                     % (walk_best_hr, amcad.q2i["hr@100"]))
        euclid_time = by_name["amcad_e"].train_seconds
        lines.append("training-time ratio amcad/amcad_e: %.2f "
                     "(paper: ~1.4x for curved ops)"
                     % (amcad.train_seconds / max(euclid_time, 1e-9)))
        write_report("table06_main.txt",
                     "Table VI - main comparison (E/C/M families)", lines)
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)
