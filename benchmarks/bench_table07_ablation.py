"""Table VII — ablation analysis of AMCAD's components.

Each row removes one module from the full model:

- ``- mixed``  : single unified space instead of the mixture;
- ``- curv``   : Euclidean spaces (no curvature at all);
- ``- fusion`` : no space-fusion stage in the node encoder;
- ``- proj``   : one shared edge space for every relation;
- ``- comb``   : uniform subspace weights instead of attention.

Paper shape: ``- curv`` hurts most (AUC 93.68 → 92.66), ``- mixed`` and
``- proj`` hurt clearly, ``- fusion`` and ``- comb`` hurt slightly.
"""

import pytest

from repro.bench import run_geometric_model, write_report

ABLATIONS = ("amcad", "amcad-mixed", "amcad-curv", "amcad-fusion",
             "amcad-proj", "amcad-comb")


def test_table07_ablations(benchmark, bench_data):
    def run():
        results = {}
        lines = []
        for name in ABLATIONS:
            result = run_geometric_model(name, bench_data)
            results[name] = result
            lines.append(result.row())

        full = results["amcad"]
        lines.append("")
        for name in ABLATIONS[1:]:
            delta = results[name].next_auc - full.next_auc
            lines.append("%-14s dAUC %+6.2f  dHR@100(Q2I) %+6.2f" % (
                name, delta,
                results[name].q2i["hr@100"] - full.q2i["hr@100"]))
        lines.append("")
        lines.append("paper: -curv hurts most (-1.01 AUC), -mixed -0.43, "
                     "-proj -0.47, -fusion -0.09, -comb -0.16")
        write_report("table07_ablation.txt",
                     "Table VII - ablation analysis", lines)
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)
