"""Table X — the online A/B test: CTR / RPM lift per result page.

The paper swaps the AMCAD_E retrieval channel for AMCAD on 4% of live
traffic for 7 days: overall CTR +0.5%, RPM +1.1%, with the largest lift
on page 1 and decaying lifts on later pages.

Here both channels are trained on the same multi-day synthetic window,
serve identical simulated request streams through their two-layer
retrievers, and clicks are drawn from the platform's ground-truth
relevance model (common random numbers per request).
"""

import pytest

from repro.bench import (
    load_dataset,
    scaled_steps,
    write_report,
)
from repro.data.logs import merge_logs
from repro.evaluation import ABTestConfig, run_ab_test
from repro.graph import build_graph
from repro.models import make_model
from repro.retrieval import IndexSet, TwoLayerRetriever
from repro.training import Trainer, TrainerConfig


def _build_channel(name, graph, seed=1):
    model = make_model(name, graph, num_subspaces=2, subspace_dim=4,
                       seed=seed)
    Trainer(model, TrainerConfig(steps=scaled_steps(250), batch_size=64,
                                 learning_rate=0.05, seed=seed)).train()
    index_set = IndexSet(model, top_k=50).build()
    return TwoLayerRetriever(index_set)


def test_table10_online_ab(benchmark, bench_data):
    def run():
        # Use a *fresh* simulator so the A/B window is deterministic
        # regardless of which other benches consumed the shared
        # simulator's random stream before this one.  The universe is
        # identical (same seed), so the bench_data graphs stay valid.
        from repro.data import SimulatorConfig, SponsoredSearchSimulator
        simulator = SponsoredSearchSimulator(SimulatorConfig(seed=3))
        simulator.simulate_days(2)  # align with the shared dataset state
        logs = simulator.simulate_days(4, start_day=30)
        graph = build_graph(bench_data.universe, logs)
        control = _build_channel("amcad_e", graph)     # the paper's control
        treatment = _build_channel("amcad", graph)     # the AMCAD channel
        # RPM is dominated by a few expensive-ad clicks (Pareto prices),
        # so it needs much more traffic than CTR for a stable sign
        result = run_ab_test(bench_data.universe, control, treatment,
                             ABTestConfig(num_requests=1200, seed=5))
        ctr = result.ctr_lift()
        rpm = result.rpm_lift()
        lines = ["%-10s %8s %8s" % ("page", "CTR", "RPM")]
        for page in sorted(k for k in ctr if k != "overall"):
            lines.append("%-10s %+7.1f%% %+7.1f%%" % (page, ctr[page],
                                                      rpm[page]))
        lines.append("%-10s %+7.1f%% %+7.1f%%" % ("overall", ctr["overall"],
                                                  rpm["overall"]))
        lines.append("")
        lines.append("paper (Table X): overall CTR +0.5%, RPM +1.1%; "
                     "largest lift on page 1")
        write_report("table10_online_ab.txt",
                     "Table X - online A/B (AMCAD vs AMCAD_E channel)", lines)
        return ctr, rpm

    benchmark.pedantic(run, rounds=1, iterations=1)
