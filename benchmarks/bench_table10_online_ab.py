"""Table X — the online A/B test: CTR / RPM lift per result page.

The paper swaps the AMCAD_E retrieval channel for AMCAD on 4% of live
traffic for 7 days: overall CTR +0.5%, RPM +1.1%, with the largest lift
on page 1 and decaying lifts on later pages.

Runs on the declarative pipeline API: one
:class:`~repro.pipeline.PipelineConfig` with ``eval.ab_control`` trains
both channels on the same multi-day synthetic window, serves identical
simulated request streams through their two-layer retrievers, and draws
clicks from the platform's ground-truth relevance model (common random
numbers per request).
"""

import pytest

from repro.bench import scaled_steps, write_report
from repro.pipeline import Pipeline, PipelineConfig


def test_table10_online_ab(benchmark):
    def run():
        config = PipelineConfig.from_dict({
            "name": "table10-ab",
            # a multi-day window of the shared bench platform (seed 3)
            "data": {"days": 4, "train_days": 4, "seed": 3},
            "model": {"name": "amcad", "num_subspaces": 2,
                      "subspace_dim": 4, "seed": 1},
            "training": {"steps": scaled_steps(250), "batch_size": 64,
                         "learning_rate": 0.05, "seed": 1},
            "index": {"top_k": 50},
            "serving": {"enabled": False},
            # RPM is dominated by a few expensive-ad clicks (Pareto
            # prices), so it needs much more traffic than CTR for a
            # stable sign
            "eval": {"auc_samples": 0, "ranking_ks": [],
                     "ab_control": "amcad_e", "ab_requests": 1200,
                     "seed": 5},
        })
        report = Pipeline(config).run()
        ctr = report.ab_ctr_lift
        rpm = report.ab_rpm_lift
        lines = ["%-10s %8s %8s" % ("page", "CTR", "RPM")]
        for page in sorted(k for k in ctr if k != "overall"):
            lines.append("%-10s %+7.1f%% %+7.1f%%" % (page, ctr[page],
                                                      rpm[page]))
        lines.append("%-10s %+7.1f%% %+7.1f%%" % ("overall", ctr["overall"],
                                                  rpm["overall"]))
        lines.append("")
        lines.append("paper (Table X): overall CTR +0.5%, RPM +1.1%; "
                     "largest lift on page 1")
        write_report("table10_online_ab.txt",
                     "Table X - online A/B (AMCAD vs AMCAD_E channel)", lines)
        return ctr, rpm

    benchmark.pedantic(run, rounds=1, iterations=1)
