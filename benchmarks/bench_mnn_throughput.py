"""MNN index-construction throughput (paper §IV-C-1).

The paper reports that with two-level parallelism (workers × SIMD) the
six inverted indices for ~100M nodes build in under two hours.  This
bench measures index-build throughput (key-result pairs per second) on
this machine and the speedup of the data-parallel worker pool —
the laptop-scale analogue of that claim.
"""

import time

import numpy as np
import pytest

from repro.bench import scaled_steps, write_report
from repro.graph.schema import Relation
from repro.models import make_model
from repro.retrieval import IndexSet, MNNSearcher
from repro.retrieval.mnn import RelationSpace
from repro.training import Trainer, TrainerConfig


def test_mnn_index_build_throughput(benchmark, bench_data):
    def run():
        model = make_model("amcad", bench_data.train_graph, num_subspaces=2,
                           subspace_dim=4, seed=1)
        Trainer(model, TrainerConfig(steps=scaled_steps(40),
                                     batch_size=64, seed=1)).train()

        lines = []
        index_set = IndexSet(model, top_k=50, num_workers=1).build()
        total_keys = sum(ix.num_keys for ix in index_set.indices.values())
        seconds = index_set.total_build_seconds
        lines.append("six indices, %d keys total: %.2fs (%.0f keys/s)"
                     % (total_keys, seconds, total_keys / seconds))

        # worker-pool scaling on the largest single index (Q2I)
        space = RelationSpace.from_model(model, Relation.Q2I)
        src = np.arange(space.num_sources)
        timings = {}
        for workers in (1, 2, 4):
            searcher = MNNSearcher(space, num_workers=workers, block_size=256)
            start = time.perf_counter()
            searcher.search(src, k=50)
            timings[workers] = time.perf_counter() - start
            lines.append("Q2I full search with %d worker(s): %.2fs"
                         % (workers, timings[workers]))

        assert seconds < 600, "index build must stay tractable"
        lines.append("")
        lines.append("paper: all six indices for 100M nodes in < 2h on a "
                     "GPU worker fleet with OpenMP+SIMD parallelism")
        write_report("mnn_throughput.txt",
                     "MNN - inverted-index build throughput", lines)
        return timings

    benchmark.pedantic(run, rounds=1, iterations=1)
