"""Table IX — training runtime vs graph size.

The paper trains on windows of 1 hour / 1 / 3 / 7 days (0.18B → 30.8B
edges) and finds total runtime near-linear in the number of edges (one
epoch's iteration count is proportional to data volume).  Here windows
of 1/2/4/7 synthetic days are trained with an iteration budget
proportional to edge count, and the report checks linearity of
seconds-per-edge.
"""

import numpy as np
import pytest

from repro.bench import load_dataset, scaled_steps, write_report
from repro.graph import build_graph
from repro.models import make_model
from repro.training import Trainer, TrainerConfig

WINDOWS = (1, 2, 4, 7)
STEPS_PER_MILLION_EDGE_WEIGHT = 6  # iterations ∝ data volume, as deployed


def test_table09_runtime_scaling(benchmark, bench_data):
    def run():
        lines = ["%-8s %10s %12s %12s %14s" % (
            "window", "#edges", "#steps", "runtime(s)", "us per edge")]
        rows = []
        logs = bench_data.simulator.simulate_days(7, start_day=20)
        for days in WINDOWS:
            graph = build_graph(bench_data.universe, logs[:days])
            edges = graph.num_edges()
            steps = scaled_steps(max(20, edges // 1500))
            model = make_model("amcad", graph, num_subspaces=2,
                               subspace_dim=4, seed=0)
            report = Trainer(model, TrainerConfig(
                steps=steps, batch_size=64, learning_rate=0.05)).train()
            rows.append((days, edges, steps, report.wall_seconds))
            lines.append("%-8s %10d %12d %12.1f %14.2f" % (
                "%dd" % days, edges, steps, report.wall_seconds,
                1e6 * report.wall_seconds / edges))

        # shape: runtime grows with edges, roughly linearly — the
        # normalised cost of the largest window stays within 2.5x of
        # the smallest (paper: near-constant seconds/edge)
        per_edge = [r[3] / r[1] for r in rows]
        assert rows[-1][3] > rows[0][3]
        assert max(per_edge) / min(per_edge) < 2.5, per_edge
        lines.append("")
        lines.append("paper (Table IX): 0.5h/6.2h/17.3h/35h for "
                     "0.18B/5.3B/16.1B/30.8B edges — near-linear")
        write_report("table09_scaling.txt",
                     "Table IX - training runtime vs graph size", lines)
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
