"""Figure 9 — online response time vs queries-per-second.

The paper's serving fleet answers 1k-50k QPS with mean response time
rising smoothly from ~1.2ms to ~2.5ms — a tenfold load increase only
doubles latency, because the two-layer retrieval is pure index lookup
behind a wide worker pool.

Here the per-request service time is *measured* by driving the
micro-batching :class:`ServingEngine` over the real two-layer
retriever (batched index lookups + LRU expansion caching, like the
production iGraph path), and an Erlang-C (M/M/c) model maps offered
load to waiting time for a serving fleet sized to saturate just above
the sweep range — the same shape-generating mechanism as the
production system.
"""

import numpy as np
import pytest

from repro.bench import scaled_steps, write_report
from repro.models import make_model
from repro.retrieval import IndexSet, TwoLayerRetriever
from repro.serving import ServingEngine, ServingSimulator
from repro.training import Trainer, TrainerConfig

QPS_SWEEP = (1000, 2000, 3000, 4000, 5000, 10000, 20000, 30000, 40000, 50000)


def test_fig09_qps_latency(benchmark, bench_data):
    def run():
        model = make_model("amcad", bench_data.train_graph, num_subspaces=2,
                           subspace_dim=4, seed=1)
        Trainer(model, TrainerConfig(steps=scaled_steps(60), batch_size=64,
                                     seed=1)).train()
        index_set = IndexSet(model, top_k=50).build()
        retriever = TwoLayerRetriever(index_set, expansion_k=10,
                                      ads_per_key=10)

        rng = np.random.default_rng(0)
        queries = rng.integers(bench_data.train_graph.num_nodes[
            list(bench_data.train_graph.num_nodes)[0]], size=60)
        preclicks = [list(rng.integers(100, size=2)) for _ in queries]

        # size the fleet so the sweep's top load reaches ~80% utilisation,
        # mirroring the paper's production margin
        engine = ServingEngine(retriever, max_batch_size=16, cache_size=256)
        sim = ServingSimulator(retriever, num_workers=1)
        service = sim.measure_batched_service_time(engine, queries,
                                                   preclicks, repeats=2)
        workers = sim.size_fleet(max(QPS_SWEEP), target_utilisation=0.8)

        stats = sim.sweep(QPS_SWEEP)
        lines = ["batched service time: %.3f ms/request, fleet: %d workers"
                 % (1000 * service, workers),
                 "engine: %d requests in %d micro-batches, "
                 "expansion-cache hit rate %.0f%%"
                 % (engine.stats.requests, engine.stats.batches,
                    100 * engine.stats.cache_hit_rate),
                 "%-10s %16s %12s" % ("QPS", "response (ms)", "utilisation")]
        for s in stats:
            lines.append("%-10d %16.3f %12.2f" % (s.qps, s.response_time_ms,
                                                  s.utilisation))

        times = [s.response_time_ms for s in stats]
        # paper shape: monotone growth, and a 10x QPS increase (5k -> 50k)
        # should less-than-quadruple the response time
        assert all(b >= a - 1e-9 for a, b in zip(times, times[1:]))
        i5k, i50k = QPS_SWEEP.index(5000), QPS_SWEEP.index(50000)
        assert times[i50k] / times[i5k] < 4.0, (
            "latency must grow slowly with QPS (got %.2fx)"
            % (times[i50k] / times[i5k]))
        lines.append("")
        lines.append("paper (Fig. 9): ~1.2ms at 1k QPS to ~2.5ms at 50k QPS "
                     "(10x load -> ~2x latency)")
        write_report("fig09_qps_latency.txt",
                     "Fig 9 - response time vs QPS", lines)
        return stats

    benchmark.pedantic(run, rounds=1, iterations=1)
