"""Encoder compute-plane throughput: recursive reference vs frontier.

PR 3 left the autodiff forward/backward as the training hot path: at
``gcn_layers=L`` the recursive context encoder re-encodes every sampled
neighbour from scratch — ``(k·|types|)^L`` encoder evaluations per node
with massive overlap — while the frontier plane dedups the receptive
field per level and encodes each unique node once (paper §IV-C's
two-level-parallelism idea applied to training).  This bench quantifies
the gap stage by stage:

- **nodes/sec encode** — repeated ``model.encode`` over query batches,
  both planes, ``gcn_layers=2``;
- **tape nodes** — ``Tensor.graph_size()`` of one batch loss per plane
  (the fused geometry kernels shrink both; the dedup shrinks frontier
  further);
- **steps/sec train** — end-to-end ``Trainer.train`` on the same
  config per plane;
- **kernels column** — the same encode/train measurements on the
  frontier plane with ``model.kernels`` forced to ``"numpy"`` vs
  ``"compiled"`` (the latter only when numba is importable).  Timings
  are steady-state: every compiled kernel is first-called once via
  ``kernels.warmup()`` and the JIT compile seconds are reported
  separately.  Loss and encode-output parity between the two modes is
  gated at any scale; the ≥1.5x encode / ≥1.3x train speedups are
  gated at full scale.

Run directly (``PYTHONPATH=src python
benchmarks/bench_encode_throughput.py [--scale X] [--out PATH]``);
results land in ``BENCH_encode_throughput.json`` at the repo root.  At
the default scale the frontier plane must clear 3x encode throughput
over the recursive reference.
"""

from __future__ import annotations

import sys
import time

import numpy as np

sys.path.insert(0, str(__import__("pathlib").Path(__file__).parent))
from common import bench_parser, write_json_out  # noqa: E402

from repro.data import SimulatorConfig, SponsoredSearchSimulator
from repro.geometry import kernels as geometry_kernels
from repro.graph import MetaPathWalker, NegativeSampler, build_graph
from repro.graph.schema import NodeType
from repro.models import make_model
from repro.training import Trainer, TrainerConfig

GCN_LAYERS = 2
BATCH_SIZE = 64
ENCODE_ROUNDS = 8
TRAIN_STEPS = 20


def _build_model(graph, plane, kernels="auto"):
    return make_model("amcad", graph, num_subspaces=2, subspace_dim=4,
                      seed=1, gcn_layers=GCN_LAYERS, compute_plane=plane,
                      kernels=kernels)


def _measure_encode(graph, rounds):
    out = {}
    n_queries = graph.num_nodes[NodeType.QUERY]
    for plane in ("recursive", "frontier"):
        model = _build_model(graph, plane)
        rng = np.random.default_rng(0)
        batches = [rng.integers(0, n_queries, size=BATCH_SIZE)
                   for _ in range(rounds)]
        start = time.perf_counter()
        for indices in batches:
            model.encode(NodeType.QUERY, indices, rng)
        seconds = time.perf_counter() - start
        nodes = rounds * BATCH_SIZE
        out[plane] = {
            "rounds": rounds,
            "batch_size": BATCH_SIZE,
            "seconds": seconds,
            "nodes_per_sec": nodes / seconds,
        }
    out["speedup"] = (out["frontier"]["nodes_per_sec"]
                      / out["recursive"]["nodes_per_sec"])
    return out


def _measure_tape(graph):
    """Tape-node counts of one batch loss, same draws via a shared plan."""
    walker = MetaPathWalker(graph)
    sampler = NegativeSampler(graph)
    blocks = walker.sample_pair_blocks(np.random.default_rng(1), 400)
    block = max(blocks, key=len)
    batch = sampler.sample_arrays(np.random.default_rng(2), block.relation,
                                  block.src_idx[:BATCH_SIZE],
                                  block.dst_idx[:BATCH_SIZE])
    out = {"relation": batch.relation.value, "batch": len(batch)}
    reference = _build_model(graph, "frontier")
    per_type = {batch.relation.source_type: [batch.src_idx]}
    per_type.setdefault(batch.relation.target_type, []).extend(
        [batch.pos_idx, batch.neg_idx.ravel()])
    plans = {t: reference.encoder.build_plan(
        t, np.unique(np.concatenate(parts)), np.random.default_rng(7))
        for t, parts in per_type.items()}
    for plane in ("recursive", "frontier"):
        model = _build_model(graph, plane)
        loss = model.loss(batch, rng=np.random.default_rng(9), plans=plans)
        out[plane] = {"tape_nodes": loss.graph_size(),
                      "loss": loss.item()}
    out["tape_shrink"] = (out["recursive"]["tape_nodes"]
                          / out["frontier"]["tape_nodes"])
    return out


def _measure_training(graph, steps):
    out = {}
    for plane in ("recursive", "frontier"):
        model = _build_model(graph, plane)
        config = TrainerConfig(steps=steps, batch_size=BATCH_SIZE, seed=1)
        report = Trainer(model, config).train()
        out[plane] = {
            "steps": report.steps,
            "wall_seconds": report.wall_seconds,
            "steps_per_sec": report.steps / report.wall_seconds,
            "final_loss": report.final_loss,
            "mean_tail_loss": report.mean_tail_loss,
        }
    out["speedup"] = (out["recursive"]["wall_seconds"]
                      / out["frontier"]["wall_seconds"])
    return out


def _measure_kernels(graph, rounds, steps):
    """Frontier-plane encode/train throughput per kernel mode.

    One warm-up encode per mode precedes the timed rounds; for the
    compiled mode the JIT compile cost is paid inside
    ``kernels.warmup()`` and reported as ``jit_seconds``, so the
    steady-state numbers measure kernel execution only.
    """
    out = {
        "have_numba": geometry_kernels.HAVE_NUMBA,
        "numba_version": geometry_kernels.NUMBA_VERSION,
    }
    modes = ["numpy"]
    if geometry_kernels.HAVE_NUMBA:
        modes.append("compiled")
    n_queries = graph.num_nodes[NodeType.QUERY]
    for mode in modes:
        info = {}
        model = _build_model(graph, "frontier", kernels=mode)
        if mode == "compiled":
            info["jit_seconds"] = geometry_kernels.warmup()
        rng = np.random.default_rng(0)
        batches = [rng.integers(0, n_queries, size=BATCH_SIZE)
                   for _ in range(rounds)]
        # warm-up call: first-touch caches (and any remaining lazy JIT
        # signatures) stay out of the steady-state timing
        model.encode(NodeType.QUERY, batches[0],
                     np.random.default_rng(99))
        probe = [p.data.copy() for p in model.encode(
            NodeType.QUERY, np.arange(min(BATCH_SIZE, n_queries)),
            np.random.default_rng(42))]
        start = time.perf_counter()
        for indices in batches:
            model.encode(NodeType.QUERY, indices, rng)
        seconds = time.perf_counter() - start
        info["encode_seconds"] = seconds
        info["encode_nodes_per_sec"] = rounds * BATCH_SIZE / seconds
        model = _build_model(graph, "frontier", kernels=mode)
        config = TrainerConfig(steps=steps, batch_size=BATCH_SIZE, seed=1)
        report = Trainer(model, config).train()
        info["train_steps_per_sec"] = report.steps / report.wall_seconds
        info["final_loss"] = report.final_loss
        out[mode] = info
        out.setdefault("_probe", {})[mode] = probe
    probes = out.pop("_probe")
    if "compiled" in out:
        out["encode_speedup"] = (out["compiled"]["encode_nodes_per_sec"]
                                 / out["numpy"]["encode_nodes_per_sec"])
        out["train_speedup"] = (out["compiled"]["train_steps_per_sec"]
                                / out["numpy"]["train_steps_per_sec"])
        out["loss_abs_diff"] = abs(out["compiled"]["final_loss"]
                                   - out["numpy"]["final_loss"])
        out["encode_max_abs_diff"] = max(
            float(np.max(np.abs(a - b))) if a.size else 0.0
            for a, b in zip(probes["numpy"], probes["compiled"]))
    geometry_kernels.set_mode("auto")
    return out


def main(argv=None) -> int:
    parser = bench_parser(
        "encode_throughput",
        "Recursive vs frontier encoder compute-plane throughput")
    args = parser.parse_args(argv)

    simulator = SponsoredSearchSimulator(SimulatorConfig(seed=3))
    graph = build_graph(simulator.universe, simulator.simulate_days(1))

    rounds = max(2, int(ENCODE_ROUNDS * args.scale))
    steps = max(3, int(TRAIN_STEPS * args.scale))

    encode_info = _measure_encode(graph, rounds)
    tape_info = _measure_tape(graph)
    training_info = _measure_training(graph, steps)
    kernels_info = _measure_kernels(graph, rounds, steps)

    payload = {
        "scale": args.scale,
        "gcn_layers": GCN_LAYERS,
        "graph": graph.stats(),
        "encode": encode_info,
        "tape": tape_info,
        "training": training_info,
        "kernels": kernels_info,
    }
    write_json_out(args.out, payload)

    print("encode nodes/s recursive %8.0f   frontier %8.0f   (%.1fx)"
          % (encode_info["recursive"]["nodes_per_sec"],
             encode_info["frontier"]["nodes_per_sec"],
             encode_info["speedup"]))
    print("tape nodes     recursive %8d   frontier %8d   (%.1fx smaller)"
          % (tape_info["recursive"]["tape_nodes"],
             tape_info["frontier"]["tape_nodes"], tape_info["tape_shrink"]))
    print("train steps/s  recursive %8.2f   frontier %8.2f   (%.2fx)"
          % (training_info["recursive"]["steps_per_sec"],
             training_info["frontier"]["steps_per_sec"],
             training_info["speedup"]))
    if "compiled" in kernels_info:
        print("kernels encode nodes/s numpy %8.0f   compiled %8.0f   "
              "(%.2fx, jit %.2fs)"
              % (kernels_info["numpy"]["encode_nodes_per_sec"],
                 kernels_info["compiled"]["encode_nodes_per_sec"],
                 kernels_info["encode_speedup"],
                 kernels_info["compiled"]["jit_seconds"]))
        print("kernels train steps/s  numpy %8.2f   compiled %8.2f   "
              "(%.2fx)"
              % (kernels_info["numpy"]["train_steps_per_sec"],
                 kernels_info["compiled"]["train_steps_per_sec"],
                 kernels_info["train_speedup"]))
        # parity is the contract at every scale; speedups gate at full
        # scale below
        if kernels_info["loss_abs_diff"] > 1e-8:
            print("FAIL: compiled-vs-numpy final-loss parity above 1e-8 "
                  "(%.3e)" % kernels_info["loss_abs_diff"])
            return 1
        if kernels_info["encode_max_abs_diff"] > 1e-6:
            print("FAIL: compiled-vs-numpy encode parity above 1e-6 "
                  "(%.3e)" % kernels_info["encode_max_abs_diff"])
            return 1
    else:
        print("kernels: numba not installed — numpy column only (%8.0f "
              "nodes/s)" % kernels_info["numpy"]["encode_nodes_per_sec"])

    if args.scale >= 1.0:
        if encode_info["speedup"] < 3.0:
            print("FAIL: frontier encode below 3x the recursive reference "
                  "(%.1fx)" % encode_info["speedup"])
            return 1
        if tape_info["frontier"]["tape_nodes"] >= \
                tape_info["recursive"]["tape_nodes"]:
            print("FAIL: frontier tape is not smaller than recursive")
            return 1
        if training_info["speedup"] <= 1.0:
            print("FAIL: frontier plane did not improve end-to-end "
                  "training wall-clock (%.2fx)" % training_info["speedup"])
            return 1
        if "compiled" in kernels_info:
            if kernels_info["encode_speedup"] < 1.5:
                print("FAIL: compiled kernels below 1.5x encode "
                      "throughput (%.2fx)" % kernels_info["encode_speedup"])
                return 1
            if kernels_info["train_speedup"] < 1.3:
                print("FAIL: compiled kernels below 1.3x train "
                      "throughput (%.2fx)" % kernels_info["train_speedup"])
                return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
