"""Training data-plane throughput: looped reference vs batched arrays.

The paper trains on hundreds of millions of nodes with O(1) alias
draws and batched sampling workers (§V-A); this bench quantifies the
reproduction's analogue on the default synthetic platform, stage by
stage:

- **pairs/sec** — §IV-A-2 meta-path walks + same-category filtering:
  ``MetaPathWalker.sample_pairs`` (one ``rng.choice`` per step) vs
  ``sample_pair_blocks`` (one alias-table gather per walk level);
- **negatives/sec** — §V-A hard/easy negative sampling:
  ``NegativeSampler.sample_batch`` (per-pair rejection loops) vs
  ``sample_arrays`` (oversample-and-mask + pooled category draws);
- **steps/sec** — end-to-end ``Trainer.train`` with
  ``data_plane="looped"`` vs ``"batched"`` on the same config.

Run directly (``PYTHONPATH=src python
benchmarks/bench_training_throughput.py [--scale X] [--out PATH]``);
results land in ``BENCH_training_throughput.json`` at the repo root —
the start of the perf trajectory.  At the default scale the batched
plane must clear 10× on pairs/sec and beat the looped plane's
end-to-end wall-clock.
"""

from __future__ import annotations

import os
import sys
import time

import numpy as np

sys.path.insert(0, str(__import__("pathlib").Path(__file__).parent))
from common import bench_parser, write_json_out  # noqa: E402

from repro.data import SimulatorConfig, SponsoredSearchSimulator
from repro.graph import MetaPathWalker, NegativeSampler, build_graph
from repro.models import make_model
from repro.training import Trainer, TrainerConfig

WALKS = 6000
TRAIN_STEPS = 120
BATCH_SIZE = 64


def _measure_pairs(walker, num_walks):
    start = time.perf_counter()
    looped = walker.sample_pairs(np.random.default_rng(0), num_walks)
    looped_seconds = time.perf_counter() - start

    start = time.perf_counter()
    blocks = walker.sample_pair_blocks(np.random.default_rng(0), num_walks)
    batched_seconds = time.perf_counter() - start
    batched_pairs = sum(len(b) for b in blocks)
    looped_rate = len(looped) / looped_seconds
    batched_rate = batched_pairs / batched_seconds
    return {
        "num_walks": num_walks,
        "looped_pairs": len(looped),
        "batched_pairs": batched_pairs,
        "looped_seconds": looped_seconds,
        "batched_seconds": batched_seconds,
        "looped_pairs_per_sec": looped_rate,
        "batched_pairs_per_sec": batched_rate,
        "speedup": batched_rate / max(looped_rate, 1e-12),
    }, looped, blocks


def _measure_negatives(sampler, looped_pairs, blocks):
    k = sampler.num_negatives
    start = time.perf_counter()
    samples = sampler.sample_batch(np.random.default_rng(1), looped_pairs)
    looped_seconds = time.perf_counter() - start
    looped_negs = sum(len(s.negatives) for s in samples)

    start = time.perf_counter()
    batched_negs = 0
    for block in blocks:
        batch = sampler.sample_arrays(np.random.default_rng(1),
                                      block.relation, block.src_idx,
                                      block.dst_idx)
        batched_negs += len(batch) * k
    batched_seconds = time.perf_counter() - start
    return {
        "k": k,
        "looped_negatives": looped_negs,
        "batched_negatives": batched_negs,
        "looped_seconds": looped_seconds,
        "batched_seconds": batched_seconds,
        "looped_negatives_per_sec": looped_negs / looped_seconds,
        "batched_negatives_per_sec": batched_negs / batched_seconds,
        "speedup": (batched_negs / batched_seconds) /
                   (looped_negs / looped_seconds),
    }


def _measure_training(graph, steps):
    # gcn_layers=0 keeps the adaptive geometry but drops the neighbour
    # aggregation, so the step time reflects the data plane rather than
    # the encoder (the autodiff forward/backward is the next hot path,
    # not this PR's)
    out = {}
    for plane in ("looped", "batched"):
        model = make_model("amcad", graph, num_subspaces=2, subspace_dim=4,
                           seed=1, gcn_layers=0)
        config = TrainerConfig(steps=steps, batch_size=BATCH_SIZE, seed=1,
                               data_plane=plane)
        report = Trainer(model, config).train()
        out[plane] = {
            "steps": report.steps,
            "wall_seconds": report.wall_seconds,
            "steps_per_sec": report.steps / report.wall_seconds,
            "samples_per_sec": report.samples_seen / report.wall_seconds,
            "final_loss": report.final_loss,
            "mean_tail_loss": report.mean_tail_loss,
        }
    out["speedup"] = (out["looped"]["wall_seconds"]
                      / out["batched"]["wall_seconds"])
    return out


def _measure_prefetch(graph, steps):
    """The overlapped training plane at ``gcn_layers=2``.

    Unlike ``_measure_training`` (gcn_layers=0, isolating the data
    plane), this section measures the regime the prefetch plane is
    *for*: deep enough that forward/backward dominates and the sampling
    phase can hide behind it.  Five rows:

    - workers ∈ {0, 2, 4} at full semantics (``backward_depth=0``) —
      the honest like-for-like comparison; sampling is only ~7% of a
      gcn_layers=2 step, so the pure-prefetch ceiling is ~1.07x and
      these rows report the achieved overlap fraction instead;
    - ``backward_depth=1`` alone, then combined with ``workers=2`` —
      the *overlapped plane*: truncated backward shrinks the tape work
      and prefetch hides the sampling behind what remains.  The
      combined row is the gate (≥ 1.3x the synchronous baseline).
    """
    def run(workers, backward_depth):
        model = make_model("amcad", graph, num_subspaces=2, subspace_dim=4,
                           seed=1, gcn_layers=2)
        config = TrainerConfig(steps=steps, batch_size=BATCH_SIZE, seed=1,
                               prefetch_workers=workers,
                               backward_depth=backward_depth)
        report = Trainer(model, config).train()
        return {
            "prefetch_workers": workers,
            "backward_depth": backward_depth,
            "steps": report.steps,
            "wall_seconds": report.wall_seconds,
            "steps_per_sec": report.steps / report.wall_seconds,
            "final_loss": report.final_loss,
            "mean_tail_loss": report.mean_tail_loss,
            "prefetch_wait_seconds": report.prefetch_wait_seconds,
            "overlap_fraction": report.overlap_fraction,
        }

    rows = [run(workers, 0) for workers in (0, 2, 4)]
    rows.append(run(0, 1))
    rows.append(run(2, 1))
    base = rows[0]["steps_per_sec"]
    for row in rows:
        row["speedup_vs_sync"] = row["steps_per_sec"] / base
    return {
        "gcn_layers": 2,
        "batch_size": BATCH_SIZE,
        # producer processes only overlap the consumer when there are
        # cores for them; on a 1-core host the workers time-slice with
        # the forward/backward and pure-prefetch rows show overhead,
        # not speedup — record the budget the numbers were taken under
        "cpu_count": os.cpu_count(),
        "rows": rows,
        "overlapped_plane_speedup": rows[-1]["speedup_vs_sync"],
    }


def main(argv=None) -> int:
    parser = bench_parser(
        "training_throughput",
        "Looped vs batched training data-plane throughput")
    args = parser.parse_args(argv)

    simulator = SponsoredSearchSimulator(SimulatorConfig(seed=3))
    graph = build_graph(simulator.universe, simulator.simulate_days(1))
    walker = MetaPathWalker(graph)
    sampler = NegativeSampler(graph)

    num_walks = max(60, int(WALKS * args.scale))
    steps = max(10, int(TRAIN_STEPS * args.scale))

    pairs_info, looped_pairs, blocks = _measure_pairs(walker, num_walks)
    negatives_info = _measure_negatives(sampler, looped_pairs, blocks)
    training_info = _measure_training(graph, steps)
    prefetch_info = _measure_prefetch(graph, steps)

    payload = {
        "scale": args.scale,
        "graph": graph.stats(),
        "pairs": pairs_info,
        "negatives": negatives_info,
        "training": training_info,
        "prefetch": prefetch_info,
    }
    write_json_out(args.out, payload)

    print("pairs/sec      looped %9.0f   batched %9.0f   (%.1fx)"
          % (pairs_info["looped_pairs_per_sec"],
             pairs_info["batched_pairs_per_sec"], pairs_info["speedup"]))
    print("negatives/sec  looped %9.0f   batched %9.0f   (%.1fx)"
          % (negatives_info["looped_negatives_per_sec"],
             negatives_info["batched_negatives_per_sec"],
             negatives_info["speedup"]))
    print("train steps/s  looped %9.2f   batched %9.2f   (%.2fx)"
          % (training_info["looped"]["steps_per_sec"],
             training_info["batched"]["steps_per_sec"],
             training_info["speedup"]))
    for row in prefetch_info["rows"]:
        print("prefetch L=2   workers=%d bd=%d %8.2f steps/s  "
              "(%.2fx vs sync, overlap %3.0f%%)"
              % (row["prefetch_workers"], row["backward_depth"],
                 row["steps_per_sec"], row["speedup_vs_sync"],
                 100.0 * row["overlap_fraction"]))

    if args.scale >= 1.0:
        if pairs_info["speedup"] < 10.0:
            print("FAIL: batched pair sampling below 10x the looped "
                  "reference (%.1fx)" % pairs_info["speedup"])
            return 1
        if training_info["speedup"] <= 1.0:
            print("FAIL: batched plane did not improve end-to-end "
                  "training wall-clock (%.2fx)" % training_info["speedup"])
            return 1
        if prefetch_info["overlapped_plane_speedup"] < 1.3:
            print("FAIL: overlapped plane (workers=2, backward_depth=1) "
                  "below 1.3x the synchronous gcn_layers=2 path (%.2fx)"
                  % prefetch_info["overlapped_plane_speedup"])
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
