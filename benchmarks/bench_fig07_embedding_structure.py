"""Figure 7 — structure of learned query embeddings per subspace.

The paper trains 2 subspaces of 2 dims each and illustrates that the
learned mixture is genuinely mixed: one subspace goes hyperbolic and
organises the query hierarchy radially ("women shoes" nearer the
origin than "catwalk leather shoes"), while same-leaf queries spread
in a ring in the spherical subspace.

Quantitative checks here (robust at laptop scale):

- **mixed geometry emerges**: the adaptive query subspaces end with one
  κ < 0 and one κ > 0 — the model discovers the mixture by itself;
- **category structure is captured**: in the learned Q2Q metric,
  same-leaf query pairs are closer than cross-leaf pairs;
- the radius-by-depth profile of the hyperbolic subspace is reported
  descriptively (the paper's radial-hierarchy picture needs production
  scale/training to stabilise; at this scale its sign is noisy).
"""

import numpy as np
import pytest
from scipy import stats

from repro.bench import scaled_steps, write_report
from repro.graph.schema import NodeType, Relation
from repro.models import make_model
from repro.retrieval.mnn import RelationSpace
from repro.training import Trainer, TrainerConfig


def test_fig07_embedding_structure(benchmark, bench_data):
    def run():
        model = make_model("amcad", bench_data.train_graph, num_subspaces=2,
                           subspace_dim=2, seed=2)
        Trainer(model, TrainerConfig(steps=scaled_steps(300), batch_size=64,
                                     learning_rate=0.05, seed=2)).train()

        kappas = model.node_manifolds[NodeType.QUERY].kappas()
        hyper = int(np.argmin(kappas))

        # descriptive: radius by category depth in the hyperbolic subspace
        graph = bench_data.train_graph
        active = graph.degree(NodeType.QUERY) > 0
        embeddings = model.embed_all(NodeType.QUERY)
        radii = np.linalg.norm(embeddings[hyper], axis=-1)
        depths = np.array([bench_data.universe.category_tree.depth[c]
                           for c in bench_data.universe.queries.category],
                          dtype=float)
        corr, pvalue = stats.spearmanr(depths[active], radii[active])
        lines = ["learned query-subspace curvatures: %s"
                 % ["%+.3f" % k for k in kappas]]
        for depth in sorted(set(depths[active].tolist())):
            mask = active & (depths == depth)
            lines.append("  depth %d: mean hyperbolic radius %.4f (n=%d)"
                         % (depth, radii[mask].mean(), int(mask.sum())))
        lines.append("spearman(depth, radius) = %.3f (p=%.2g) "
                     "[descriptive only]" % (corr, pvalue))

        # structural: same-leaf pairs closer than cross-leaf pairs in
        # the learned Q2Q metric
        space = RelationSpace.from_model(model, Relation.Q2Q)
        rng = np.random.default_rng(0)
        cats = bench_data.universe.queries.category
        active_ids = np.flatnonzero(active)
        same, cross = [], []
        for _ in range(4000):
            a, b = rng.choice(active_ids, size=2, replace=False)
            d = space.pair_distance(np.array([a]), np.array([b]))[0]
            if cats[a] == cats[b]:
                same.append(d)
            else:
                cross.append(d)
        same_mean = float(np.mean(same))
        cross_mean = float(np.mean(cross))
        lines.append("mean learned Q2Q distance: same-category %.3f vs "
                     "cross-category %.3f" % (same_mean, cross_mean))

        mean_weights = space.src_weights.mean(axis=0)
        lines.append("mean Q2Q attention per subspace: %s"
                     % ["%.3f" % w for w in mean_weights])
        lines.append("")
        lines.append("paper (Fig. 7): one hyperbolic + one spherical "
                     "subspace; hierarchy radial in the hyperbolic one; "
                     "same-leaf queries ring-shaped in the spherical one")

        assert kappas[hyper] < 0, "one subspace should turn hyperbolic"
        assert max(kappas) > 0, "one subspace should stay/turn spherical"
        assert same_mean < cross_mean, (
            "same-category queries must be closer in the learned metric")
        write_report("fig07_embedding_structure.txt",
                     "Fig 7 - mixed-geometry query structure", lines)
        return kappas, same_mean, cross_mean

    benchmark.pedantic(run, rounds=1, iterations=1)
