"""End-to-end chaos smoke: SIGKILL mid-train, resume, serve through faults.

The scripted version of the lifecycle story CI needs to re-prove on
every change:

1. start a checkpointed pipeline run and SIGKILL the process once the
   first checkpoint lands (a real ``kill -9``, not an in-process
   exception — nothing gets to clean up);
2. rerun the same command: it must resume from the checkpoint (the
   stage summary says so), finish, and publish a generation;
3. serve from the published artifacts under an injected slice fault
   with retries disabled: the run must complete degraded — flagged,
   never crashed;
4. serve again with retries enabled: the same fault budget must be
   absorbed with zero degraded requests;
5. ``gc --keep 1`` must prune nothing live.

Exits nonzero (with the offending output echoed) on any violation.
Run directly: ``PYTHONPATH=src python benchmarks/chaos_smoke.py
[--artifacts DIR]``.
"""

from __future__ import annotations

import argparse
import pathlib
import signal
import subprocess
import sys
import tempfile
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
RUN_CMD = [
    sys.executable, "-m", "repro", "run",
    "--config", str(REPO_ROOT / "examples" / "configs" / "tiny.json"),
    "--set", "training.steps=60",
    "--set", "training.checkpoint_every=5",
    "--set", "serving.measure_requests=0",
    "--set", "eval.enabled=false",
]


def fail(message: str, output: str = "") -> int:
    print("CHAOS SMOKE FAIL: %s" % message)
    if output:
        print(output[-4000:])
    return 1


def run_cli(args, artifacts: pathlib.Path) -> subprocess.CompletedProcess:
    return subprocess.run(
        args + ["--artifacts", str(artifacts)],
        capture_output=True, text=True, cwd=REPO_ROOT, timeout=600)


def kill_mid_train(artifacts: pathlib.Path) -> int:
    """Start the run, SIGKILL it after the first checkpoint write."""
    proc = subprocess.Popen(RUN_CMD + ["--artifacts", str(artifacts)],
                            stdout=subprocess.PIPE,
                            stderr=subprocess.STDOUT,
                            text=True, cwd=REPO_ROOT)
    checkpoint = artifacts / "checkpoint.npz"
    deadline = time.time() + 300
    while time.time() < deadline:
        if checkpoint.exists():
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)
            return -9
        if proc.poll() is not None:
            # finished before the first checkpoint: the workload is too
            # small for the kill to land — treat as a smoke failure so
            # the step sizes get fixed rather than silently skipped
            return proc.returncode
        time.sleep(0.05)
    proc.kill()
    raise TimeoutError("run never wrote a checkpoint")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--artifacts", type=pathlib.Path, default=None)
    args = parser.parse_args(argv)
    if args.artifacts is None:
        scratch = tempfile.TemporaryDirectory(prefix="chaos-smoke-")
        artifacts = pathlib.Path(scratch.name) / "artifacts"
    else:
        artifacts = args.artifacts

    code = kill_mid_train(artifacts)
    if code != -9:
        return fail("run exited %s before it could be killed" % code)
    if not (artifacts / "checkpoint.npz").exists():
        return fail("checkpoint vanished after SIGKILL")
    print("killed mid-train; checkpoint survived")

    rerun = run_cli(RUN_CMD, artifacts)
    if rerun.returncode != 0:
        return fail("resumed run exited %d" % rerun.returncode, rerun.stdout)
    if "resumed from step" not in rerun.stdout:
        return fail("rerun did not resume from the checkpoint", rerun.stdout)
    if "published generation" not in rerun.stdout:
        return fail("resumed run published no generation", rerun.stdout)
    if (artifacts / "checkpoint.npz").exists():
        return fail("completed run left its checkpoint behind")
    print("resumed, completed, and published:",
          [line for line in rerun.stdout.splitlines()
           if "resumed" in line or "published" in line])

    # first-attempt-only faults: with retries disabled every matched
    # slice degrades; with retries enabled every one recovers — the
    # same budget proves both halves regardless of slice topology
    fault = ('faults.specs=[{"site":"engine.slice","mode":"raise",'
             '"rate":1.0,"match":{"attempt":0},"max_fires":4}]')
    serve = [sys.executable, "-m", "repro", "serve",
             "--requests", "32", "--qps", "2000",
             "--set", fault]
    degraded = run_cli(serve + ["--set", "serving.slice_retries=0"],
                       artifacts)
    if degraded.returncode != 0:
        return fail("faulted serve crashed (%d)" % degraded.returncode,
                    degraded.stdout + degraded.stderr)
    if "DEGRADED" not in degraded.stdout:
        return fail("faulted serve did not flag degraded requests",
                    degraded.stdout)
    print("faulted serve completed degraded, not dead")

    recovered = run_cli(serve + ["--set", "serving.slice_retries=2"],
                        artifacts)
    if recovered.returncode != 0:
        return fail("retrying serve crashed (%d)" % recovered.returncode,
                    recovered.stdout + recovered.stderr)
    if "DEGRADED" in recovered.stdout:
        return fail("slice retries failed to absorb the fault budget",
                    recovered.stdout)
    print("same fault budget absorbed by slice retries")

    gc = run_cli([sys.executable, "-m", "repro", "gc", "--keep", "1"],
                 artifacts)
    if gc.returncode != 0 or "live" not in gc.stdout:
        return fail("gc failed", gc.stdout + gc.stderr)
    print("chaos smoke passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
