"""Offline inference throughput: full-graph plans and sharded index builds.

PR 4 made *training* encode cheap; the offline half (``embed_all``,
index builds) still walked the vocabulary in per-batch recursive plans.
This bench quantifies the sharded offline→online plane stage by stage:

- **embed_all nodes/sec** — full-graph-plan numpy path
  (``method="plan"``) vs. the per-batch tensor reference
  (``method="batch"``), summed over all node types at ``gcn_layers=2``;
- **parity** — both paths on one shared full-graph plan must agree
  bit-for-bit (the numpy compute phase mirrors the tensor ops exactly);
- **index build + search wall-clock** — ``IndexSet.build`` and repeated
  backend searches through ``"sharded"`` (exact inner) vs. the
  monolithic ``"exact"`` backend, with a top-k equality check (sharded
  merge semantics are exact by construction).

Run directly (``PYTHONPATH=src python benchmarks/bench_index_build.py
[--scale X] [--out PATH]``); results land in ``BENCH_index_build.json``
at the repo root.  At the default scale the full-graph plan must clear
3x embed_all throughput over the per-batch reference.
"""

from __future__ import annotations

import sys
import time

import numpy as np

sys.path.insert(0, str(__import__("pathlib").Path(__file__).parent))
from common import bench_parser, write_json_out  # noqa: E402

from repro.data import SimulatorConfig, SponsoredSearchSimulator
from repro.graph import build_graph
from repro.graph.schema import NodeType, Relation
from repro.models import make_model
from repro.retrieval import IndexSet

GCN_LAYERS = 2
EMBED_ROUNDS = 3
SEARCH_ROUNDS = 4
SEARCH_BATCH = 64
NUM_SHARDS = 4
TOP_K = 50


def _build_model(graph):
    return make_model("amcad", graph, num_subspaces=2, subspace_dim=4,
                      seed=1, gcn_layers=GCN_LAYERS)


def _measure_embed_all(model, rounds):
    """Whole-vocabulary embedding throughput, both compute paths."""
    graph = model.graph
    types = [t for t in NodeType if graph.num_nodes[t] > 0]
    out = {}
    for method in ("batch", "plan"):
        for t in types:   # warm caches/allocators once per path
            model.embed_all(t, method=method)
        start = time.perf_counter()
        for _ in range(rounds):
            for t in types:
                model.embed_all(t, method=method)
        seconds = time.perf_counter() - start
        nodes = rounds * sum(graph.num_nodes[t] for t in types)
        out[method] = {
            "rounds": rounds,
            "nodes": nodes,
            "seconds": seconds,
            "nodes_per_sec": nodes / seconds,
        }
    out["speedup"] = (out["plan"]["nodes_per_sec"]
                      / out["batch"]["nodes_per_sec"])

    # parity on one shared plan: the numpy compute phase mirrors the
    # tensor ops exactly, so the two paths must agree bit-for-bit
    plan = model.build_full_plan(NodeType.QUERY)
    via_plan = model.embed_all(NodeType.QUERY, method="plan", plan=plan)
    via_batch = model.embed_all(NodeType.QUERY, method="batch", plan=plan)
    out["bit_equal_on_shared_plan"] = bool(
        all(np.array_equal(a, b) for a, b in zip(via_plan, via_batch)))
    return out


def _measure_index(model, rounds):
    """Build + search wall-clock, sharded vs monolithic exact."""
    relations = [Relation.Q2A, Relation.I2A]
    out = {"relations": [r.value for r in relations],
           "num_shards": NUM_SHARDS, "top_k": TOP_K}
    sets = {}
    for name, spec in (
            ("exact", dict(backend="exact")),
            ("sharded", dict(backend="sharded",
                             backend_kwargs={"num_shards": NUM_SHARDS,
                                             "parallelism": 2}))):
        start = time.perf_counter()
        index_set = IndexSet(model, top_k=TOP_K, **spec).build(relations)
        build_seconds = time.perf_counter() - start
        sets[name] = index_set

        rng = np.random.default_rng(5)
        n_src = index_set.spaces[Relation.Q2A].num_sources
        batches = [rng.integers(0, n_src, size=SEARCH_BATCH)
                   for _ in range(rounds)]
        backend = index_set.backends[Relation.Q2A]
        backend.search(batches[0], TOP_K)   # warm
        start = time.perf_counter()
        for batch in batches:
            backend.search(batch, TOP_K)
        search_seconds = time.perf_counter() - start
        out[name] = {
            "build_seconds": build_seconds,
            "search_rounds": rounds,
            "search_batch": SEARCH_BATCH,
            "search_seconds": search_seconds,
            "queries_per_sec": rounds * SEARCH_BATCH / search_seconds,
        }
    out["build_ratio"] = (out["exact"]["build_seconds"]
                          / out["sharded"]["build_seconds"])
    out["search_ratio"] = (out["exact"]["search_seconds"]
                           / out["sharded"]["search_seconds"])
    out["topk_identical"] = bool(all(
        np.array_equal(sets["exact"][r].ids, sets["sharded"][r].ids)
        for r in relations))
    return out


def main(argv=None) -> int:
    parser = bench_parser(
        "index_build",
        "Full-graph-plan embed_all and sharded index build/search")
    args = parser.parse_args(argv)

    simulator = SponsoredSearchSimulator(SimulatorConfig(seed=3))
    graph = build_graph(simulator.universe, simulator.simulate_days(1))
    model = _build_model(graph)

    embed_rounds = max(1, int(EMBED_ROUNDS * args.scale))
    search_rounds = max(1, int(SEARCH_ROUNDS * args.scale))

    embed_info = _measure_embed_all(model, embed_rounds)
    index_info = _measure_index(model, search_rounds)

    payload = {
        "scale": args.scale,
        "gcn_layers": GCN_LAYERS,
        "graph": graph.stats(),
        "embed_all": embed_info,
        "index": index_info,
    }
    write_json_out(args.out, payload)

    print("embed_all nodes/s batch %8.0f   plan %8.0f   (%.1fx, bit-equal "
          "on shared plan: %s)"
          % (embed_info["batch"]["nodes_per_sec"],
             embed_info["plan"]["nodes_per_sec"], embed_info["speedup"],
             embed_info["bit_equal_on_shared_plan"]))
    print("index build    exact %7.2fs   sharded(%d) %7.2fs   (%.2fx)"
          % (index_info["exact"]["build_seconds"], NUM_SHARDS,
             index_info["sharded"]["build_seconds"],
             index_info["build_ratio"]))
    print("index search   exact %7.3fs   sharded(%d) %7.3fs   (%.2fx, "
          "top-k identical: %s)"
          % (index_info["exact"]["search_seconds"], NUM_SHARDS,
             index_info["sharded"]["search_seconds"],
             index_info["search_ratio"], index_info["topk_identical"]))

    if not embed_info["bit_equal_on_shared_plan"]:
        print("FAIL: plan and per-batch embed_all disagree on a shared plan")
        return 1
    if not index_info["topk_identical"]:
        print("FAIL: sharded backend top-k differs from exact")
        return 1
    if args.scale >= 1.0 and embed_info["speedup"] < 3.0:
        print("FAIL: full-graph-plan embed_all below 3x the per-batch "
              "reference (%.1fx)" % embed_info["speedup"])
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
