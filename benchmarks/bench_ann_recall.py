"""ANN recall/latency frontier: IVF and NSW vs exact MNN search.

The paper ships exact MNN search because product quantisation cannot
express its attention-weighted mixed-curvature metric (§IV-C-1).  The
``"ivf"`` and ``"nsw"`` backends exploit the structure PQ cannot:
coarse candidate generation in the flat ``logmap0`` tangent space, true
manifold metric only on the survivors.  This bench maps that trade:

- **recall@k vs ExactBackend** and **queries/sec** for both backends
  across their dials (``nprobe``/``rerank_k`` for IVF, ``ef_search``
  for NSW) at scaled-up synthetic catalogs;
- the **mixed-curvature twist** measured explicitly: every dial point
  is also run with ``manifold_rerank=False`` (tangent-space-only
  ranking), so the recall the true-metric re-rank buys over pure flat
  pruning is its own column;
- **sharded composition**: ``sharded(inner_backend="ivf")`` at the
  full-coverage dial must return bit-identical ids *and* distances to
  ``sharded(inner_backend="exact")`` (same shard slices, so swapping
  the inner backend must change nothing at all), and the same ids as
  the unsharded IVF backend with distances equal to ~1 ulp (BLAS
  summation order differs between shard slices and the full array, so
  cross-layout distances are ``allclose``, not bitwise).

Run directly (``PYTHONPATH=src python benchmarks/bench_ann_recall.py
[--scale X] [--out PATH]``); results land in ``BENCH_ann_recall.json``
at the repo root.  Gates: sharded/unsharded bit-identity always; at
CI smoke scales (< 1.0) recall@10 >= 0.95 for both backends at their
default dials on the smallest catalog (near-exact regime — a wiring
check, not a frontier claim); at full scale, a dial point per backend
with recall@10 >= 0.95 **and** >= 3x exact's queries/sec on the
largest catalog.
"""

from __future__ import annotations

import sys
import time

import numpy as np

sys.path.insert(0, str(__import__("pathlib").Path(__file__).parent))
from common import bench_parser, write_json_out  # noqa: E402

from repro.graph.schema import Relation
from repro.retrieval import BACKENDS, make_backend
from repro.retrieval.mnn import RelationSpace
from repro.retrieval.quantization import recall_at_k

K = 10
NUM_QUERIES = 256
SEARCH_BATCH = 64
BASE_CATALOGS = (4000, 24000)
NUM_SHARDS = 3
#: (nprobe, rerank_k) sweep for IVF — (16, 0) is the config default
IVF_DIALS = ((4, 100), (8, 100), (16, 100), (16, 0), (32, 100), (64, 200))
#: (ef_search, rerank_k, expand_hops) sweep for NSW — rerank_k > 0
#: switches on neighbourhood widening, expand_hops deepens it
NSW_DIALS = ((16, 0, 1), (32, 0, 1), (48, 0, 1),
             (16, 150, 2), (16, 200, 2), (16, 300, 2), (24, 200, 2))
#: frontier NSW graphs get a denser graph than the class default
NSW_MAX_DEGREE = 16


def make_space(num_targets: int, num_queries: int, seed: int,
               dim: int = 8) -> RelationSpace:
    """Synthetic two-subspace mixed-curvature relation space.

    Hyperbolic + spherical subspaces with mildly varying attention
    weights — enough metric structure that tangent-only ranking
    measurably diverges from the true metric (the twist this bench
    isolates), built without training a model so catalogs scale freely.
    """
    rng = np.random.default_rng(seed)
    kappas = [-0.6, 0.5]
    src, dst = [], []
    for _ in kappas:
        src.append(rng.normal(scale=0.3, size=(num_queries, dim)))
        dst.append(rng.normal(scale=0.3, size=(num_targets, dim)))
    src_w = rng.uniform(0.42, 0.58, size=(num_queries, len(kappas)))
    dst_w = rng.uniform(0.42, 0.58, size=(num_targets, len(kappas)))
    return RelationSpace(relation=Relation.Q2A,
                         src_embeddings=src, dst_embeddings=dst,
                         src_weights=src_w, dst_weights=dst_w,
                         kappas=kappas)


def timed_search(backend, queries: np.ndarray, k: int, reps: int = 2):
    """Batched search returning ``(ids, seconds, queries_per_sec)``.

    Takes the best of ``reps`` passes — the recall/latency *ratios*
    the gates check are only meaningful when neither side's timing
    caught a machine hiccup.
    """
    ids, best = None, np.inf
    for __ in range(reps):
        out = []
        start = time.perf_counter()
        for lo in range(0, queries.size, SEARCH_BATCH):
            out.append(backend.search(queries[lo:lo + SEARCH_BATCH], k)[0])
        best = min(best, time.perf_counter() - start)
        ids = np.concatenate(out)
    return ids, best, queries.size / best


def measure_dial(backend, queries, k, gt_ids, exact, dial: dict):
    """One dial point: recall/qps with and without the manifold re-rank.

    The exact baseline is re-timed back to back with every dial point
    (``exact`` is the built exact backend): under sustained load this
    host throttles progressively, so a single exact measurement taken
    minutes earlier would flatter or damn every later speedup ratio
    depending on nothing but its position in the run.
    """
    for key, value in dial.items():
        setattr(backend, key, value)
    point = dict(dial)
    backend.manifold_rerank = True
    ids, seconds, qps = timed_search(backend, queries, k)
    __, __, exact_qps = timed_search(exact, queries, k, reps=1)
    point.update(recall=recall_at_k(ids, gt_ids, k), seconds=seconds,
                 queries_per_sec=qps, exact_queries_per_sec=exact_qps,
                 speedup_vs_exact=qps / exact_qps)
    # the mixed-curvature twist: same prune, no true-metric re-rank
    backend.manifold_rerank = False
    tangent_ids, __, tangent_qps = timed_search(backend, queries, k,
                                                reps=1)
    backend.manifold_rerank = True
    point["tangent_only_recall"] = recall_at_k(tangent_ids, gt_ids, k)
    point["tangent_only_queries_per_sec"] = tangent_qps
    point["rerank_recall_gain"] = (point["recall"]
                                   - point["tangent_only_recall"])
    return point


def measure_catalog(num_targets: int, num_queries: int, seed: int) -> dict:
    space = make_space(num_targets, num_queries, seed)
    queries = np.arange(num_queries, dtype=np.int64)

    exact = make_backend("exact").build(space)
    gt_ids, exact_seconds, exact_qps = timed_search(exact, queries, K)
    out = {"num_targets": num_targets, "num_queries": num_queries,
           "k": K, "exact_seconds": exact_seconds,
           "exact_queries_per_sec": exact_qps, "backends": {}}

    # IVF: one build, dials are search-time attributes
    start = time.perf_counter()
    ivf = BACKENDS["ivf"]().build(space)
    ivf_build = time.perf_counter() - start
    points = [measure_dial(ivf, queries, K, gt_ids, exact,
                           {"nprobe": nprobe, "rerank_k": rerank})
              for nprobe, rerank in IVF_DIALS]
    out["backends"]["ivf"] = {"build_seconds": ivf_build,
                              "num_lists": ivf.resolved_lists,
                              "default_dial": {"nprobe": ivf.__class__().nprobe,
                                               "rerank_k": 0},
                              "points": points}

    # NSW: a default-construction graph (the config-default dial) plus
    # a denser frontier graph swept over ef_search
    start = time.perf_counter()
    nsw_default = BACKENDS["nsw"]().build(space)
    nsw_default_build = time.perf_counter() - start
    default_point = measure_dial(
        nsw_default, queries, K, gt_ids, exact,
        {"ef_search": nsw_default.ef_search, "rerank_k": 0})
    default_point["max_degree"] = nsw_default.max_degree
    start = time.perf_counter()
    nsw = BACKENDS["nsw"](max_degree=NSW_MAX_DEGREE).build(space)
    nsw_build = time.perf_counter() - start
    points = [measure_dial(nsw, queries, K, gt_ids, exact,
                           {"ef_search": ef, "rerank_k": rerank,
                            "expand_hops": hops})
              for ef, rerank, hops in NSW_DIALS]
    for point in points:
        point["max_degree"] = NSW_MAX_DEGREE
    out["backends"]["nsw"] = {"build_seconds": nsw_build,
                              "default_build_seconds": nsw_default_build,
                              "default_dial": default_point,
                              "points": [default_point] + points}

    # sharded composition at the full-coverage dial: every list probed
    # and every candidate re-ranked means every ivf inner backend
    # reduces to exact search over its shard slice, so swapping the
    # sharded inner backend exact -> ivf must change nothing bit for
    # bit; against the *unsharded* backend the ids must agree but
    # distances only to ~1 ulp (BLAS summation order differs between a
    # shard slice and the full array)
    full = {"nprobe": 10 ** 9, "rerank_k": 0}
    unsharded = BACKENDS["ivf"](**full).build(space)
    sharded = make_backend("sharded", num_shards=NUM_SHARDS,
                           inner_backend="ivf",
                           inner_kwargs=dict(full)).build(space)
    sharded_exact = make_backend("sharded",
                                 num_shards=NUM_SHARDS).build(space)
    ids_u, dists_u = unsharded.search(queries, K)
    ids_s, dists_s = sharded.search(queries, K)
    ids_e, dists_e = sharded_exact.search(queries, K)
    out["sharded_ivf_bit_identical"] = bool(
        np.array_equal(ids_s, ids_e) and np.array_equal(dists_s, dists_e))
    out["sharded_vs_unsharded_ids_identical"] = bool(
        np.array_equal(ids_s, ids_u))
    out["sharded_vs_unsharded_dists_allclose"] = bool(
        np.allclose(dists_s, dists_u, rtol=1e-9, atol=1e-12))
    return out


def main(argv=None) -> int:
    parser = bench_parser(
        "ann_recall",
        "IVF/NSW recall-latency frontier vs exact mixed-curvature search")
    args = parser.parse_args(argv)

    catalogs = sorted({max(200, int(base * args.scale))
                       for base in BASE_CATALOGS})
    num_queries = max(64, min(NUM_QUERIES, int(NUM_QUERIES * args.scale)))
    results = [measure_catalog(n, num_queries, seed=7 + i)
               for i, n in enumerate(catalogs)]

    payload = {"scale": args.scale, "k": K, "num_queries": num_queries,
               "num_shards": NUM_SHARDS, "catalogs": results}
    write_json_out(args.out, payload)

    for cat in results:
        print("catalog %6d  exact %7.1f q/s  sharded(ivf) bit-identical: %s"
              % (cat["num_targets"], cat["exact_queries_per_sec"],
                 cat["sharded_ivf_bit_identical"]))
        for name, info in cat["backends"].items():
            best = max(info["points"], key=lambda p: p["recall"])
            frontier = [p for p in info["points"] if p["recall"] >= 0.95]
            fastest = (max(frontier, key=lambda p: p["queries_per_sec"])
                       if frontier else best)
            print("  %-4s best recall %.3f | recall>=0.95 fastest: "
                  "%.3f recall at %.1fx exact (rerank gain %+.3f)"
                  % (name, best["recall"], fastest["recall"],
                     fastest["speedup_vs_exact"],
                     fastest["rerank_recall_gain"]))

    failed = False
    for cat in results:
        if not cat["sharded_ivf_bit_identical"]:
            print("FAIL: sharded(ivf) differs from sharded(exact) at the "
                  "full-coverage dial (catalog %d)" % cat["num_targets"])
            failed = True
        if not (cat["sharded_vs_unsharded_ids_identical"]
                and cat["sharded_vs_unsharded_dists_allclose"]):
            print("FAIL: sharded(ivf) disagrees with unsharded ivf at the "
                  "full-coverage dial (catalog %d)" % cat["num_targets"])
            failed = True
    if args.scale < 1.0:
        smallest = results[0]
        for name in ("ivf", "nsw"):
            info = smallest["backends"][name]
            if name == "ivf":
                default = next(p for p in info["points"]
                               if p["nprobe"] == info["default_dial"]["nprobe"]
                               and p["rerank_k"] == 0)
            else:
                default = info["default_dial"]
            if default["recall"] < 0.95:
                print("FAIL: %s recall@%d %.3f < 0.95 at the default dial "
                      "(catalog %d)" % (name, K, default["recall"],
                                        smallest["num_targets"]))
                failed = True
    else:
        largest = results[-1]
        for name in ("ivf", "nsw"):
            points = largest["backends"][name]["points"]
            if not any(p["recall"] >= 0.95 and p["speedup_vs_exact"] >= 3.0
                       for p in points):
                print("FAIL: %s has no dial point with recall@%d >= 0.95 "
                      "and >= 3x exact queries/sec at catalog %d"
                      % (name, K, largest["num_targets"]))
                failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
