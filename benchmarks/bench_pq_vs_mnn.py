"""PQ vs MNN — why AMCAD needs exact mixed-curvature search (§IV-C-1).

The paper argues product quantisation cannot serve its attention-
weighted mixed-curvature similarity and therefore builds MNN (exact
brute force with two-level parallelism).  This bench quantifies that:

- ground truth = the ``ExactBackend`` (MNN) top-k under the learned
  metric;
- PQ baseline  = the ``PQBackend`` — classic PQ/ADC over the
  *concatenated Euclidean* embedding (the best a traditional pipeline
  can do: it can neither apply per-subspace geodesics nor per-pair
  attention weights);
- report recall@k of PQ against the true metric, plus PQ's recall on
  plain Euclidean search as a control (showing PQ itself is fine when
  the metric matches its assumptions).

Both searches run through the same pluggable
:class:`~repro.retrieval.backend.SearchBackend` interface that
``IndexSet`` builds indices with, and both ground truths come from
the shared :func:`common.exact_ground_truth` /
:func:`common.euclidean_view` helpers — one streamed exact pass per
ranking, no materialised ``(Q, N)`` distance matrix.
"""

import sys

import numpy as np
import pytest

from repro.bench import scaled_steps, write_report
from repro.graph.schema import Relation
from repro.models import make_model
from repro.retrieval import make_backend
from repro.retrieval.mnn import RelationSpace
from repro.retrieval.quantization import recall_at_k
from repro.training import Trainer, TrainerConfig

sys.path.insert(0, str(__import__("pathlib").Path(__file__).parent))
from common import euclidean_view, exact_ground_truth  # noqa: E402


def test_pq_cannot_serve_mixed_metric(benchmark, bench_data):
    def run():
        model = make_model("amcad", bench_data.train_graph, num_subspaces=2,
                           subspace_dim=4, seed=1)
        Trainer(model, TrainerConfig(steps=scaled_steps(150), batch_size=64,
                                     learning_rate=0.05, seed=1)).train()
        space = RelationSpace.from_model(model, Relation.Q2A)

        rng = np.random.default_rng(0)
        queries = rng.choice(space.num_sources, size=80, replace=False)
        k = 10

        # ground truth under the learned mixed-curvature metric —
        # the one shared exact computation for this run
        exact_ids, __ = exact_ground_truth(space, queries, k)

        # PQ over concatenated embeddings (all a traditional ANN sees)
        pq = make_backend("pq", num_blocks=4, codebook_size=32,
                          seed=0).build(space)
        pq_ids, __ = pq.search(queries, k=k)
        pq_recall = recall_at_k(pq_ids, exact_ids, k)

        # decomposition: how much is lost to the metric mismatch alone
        # (exact Euclidean search vs the true metric), and how much PQ
        # tracks its own Euclidean objective (its home turf).  The
        # Euclidean control ranking reuses the same streamed exact
        # backend over a flat κ=0 view instead of a dense (Q, N)
        # distance matrix.
        flat_ids, __ = exact_ground_truth(euclidean_view(space), queries, k)
        mismatch_recall = recall_at_k(flat_ids, exact_ids, k)
        control_recall = recall_at_k(pq_ids, flat_ids, k)

        lines = [
            "recall@%d, exact-Euclidean search vs true mixed metric: %.3f"
            "   <- loss from the metric mismatch alone" % (k, mismatch_recall),
            "recall@%d, PQ vs true mixed metric: %.3f" % (k, pq_recall),
            "recall@%d, PQ vs exact Euclidean (control): %.3f"
            % (k, control_recall),
            "PQ compression: %.0fx" % pq.index.compression_ratio(),
            "",
            "paper (§IV-C-1): the attention-weighted metric is 'hard to "
            "directly use' with product quantisation, motivating MNN; "
            "MNN recall vs the true metric is 1.0 by construction",
        ]
        # the true metric is not the Euclidean metric: even *exact*
        # Euclidean search misses part of the true top-k, and PQ can
        # only do worse than that ceiling
        assert mismatch_recall < 0.95, (
            "the mixed metric should differ measurably from Euclidean")
        assert pq_recall <= mismatch_recall + 0.05
        write_report("pq_vs_mnn.txt", "PQ vs MNN - metric mismatch", lines)
        return pq_recall, mismatch_recall, control_recall

    benchmark.pedantic(run, rounds=1, iterations=1)
