"""Fault-tolerance costs: degraded search, hot-swap pause, resume overhead.

Puts numbers on the three prices the fault-tolerant lifecycle pays:

- **degraded sharded search** — a 4-shard backend with one shard dead
  (injected at the ``"shard.search"`` fault site) vs. healthy: p50/p99
  search latency and the recall of the healthy-shard merge against the
  full top-k.  The merge is exact over the surviving shards, so the
  recall floor is just the fraction of true top-k ids living outside
  the dead shard — measured, not assumed;
- **hot-swap pause** — generation swaps applied to a live
  :class:`ServingEngine` between micro-batches: the pointer-flip wall
  time (the only "pause" a request can observe) and proof that a run
  with swaps in the middle serves every request non-degraded;
- **resume overhead** — a checkpointed training run vs. the same run
  without checkpoint writes (both on the producer payload path, so the
  comparison is write-cost only), the one-off save/restore walls, and
  a bit-identical-resume check: losses after restoring a mid-run
  checkpoint must equal the reference run's tail exactly.

Gates (always on): degraded results are never empty and never out of
order; resumed losses match the reference bit-for-bit.  At
``--scale >= 1`` the degraded search p99 must stay within 2x healthy —
exclusion is *less* work, so a degraded shard must not slow the
fleet down.

Run directly (``PYTHONPATH=src python benchmarks/bench_fault_tolerance.py
[--scale X] [--out PATH]``); CI runs ``--scale 0.25`` as a smoke.
"""

from __future__ import annotations

import sys
import time

import numpy as np

sys.path.insert(0, str(__import__("pathlib").Path(__file__).parent))
from common import bench_parser, write_json_out  # noqa: E402

from repro.data import SimulatorConfig, SponsoredSearchSimulator
from repro.graph import build_graph
from repro.graph.schema import Relation
from repro.models import make_model
from repro.retrieval import IndexSet, ShardedBackend, TwoLayerRetriever
from repro.retrieval.mnn import RelationSpace
from repro.serving import ServingEngine
from repro.testing import faults
from repro.training import Trainer, TrainerConfig


def _tall_space(num_targets: int, num_sources: int = 64, dim: int = 6,
                seed: int = 0) -> RelationSpace:
    rng = np.random.default_rng(seed)
    scale = 0.3
    return RelationSpace(
        relation=Relation.Q2A,
        src_embeddings=[scale * rng.standard_normal((num_sources, dim)),
                        scale * rng.standard_normal((num_sources, dim))],
        dst_embeddings=[scale * rng.standard_normal((num_targets, dim)),
                        scale * rng.standard_normal((num_targets, dim))],
        src_weights=np.full((num_sources, 2), 0.5),
        dst_weights=np.full((num_targets, 2), 0.5),
        kappas=[-0.5, 0.4],
    )


def _percentiles(samples) -> dict:
    arr = np.asarray(samples, dtype=np.float64)
    return {"p50_ms": 1000.0 * float(np.percentile(arr, 50)),
            "p99_ms": 1000.0 * float(np.percentile(arr, 99))}


def bench_degraded_search(scale: float) -> dict:
    num_targets = max(int(20000 * scale), 2000)
    rounds = max(int(60 * scale), 10)
    k = 20
    space = _tall_space(num_targets)
    backend = ShardedBackend(num_shards=4).build(space)
    rng = np.random.default_rng(1)
    batches = [rng.integers(0, space.num_sources, size=16)
               for _ in range(rounds)]

    def drive() -> tuple:
        walls, results = [], []
        for batch in batches:
            start = time.perf_counter()
            ids, dists = backend.search(batch, k=k)
            walls.append(time.perf_counter() - start)
            results.append((ids, dists))
        return walls, results

    faults.reset()
    healthy_walls, healthy = drive()
    faults.install(faults.FaultSpec(site="shard.search", match={"shard": 2}))
    degraded_walls, degraded = drive()
    faults.reset()

    dead_lo, dead_hi = backend.shard_bounds[2]
    overlaps = []
    for (h_ids, _), (d_ids, d_dists) in zip(healthy, degraded):
        assert d_ids.shape == (16, k) and np.all(d_dists[:, :-1]
                                                 <= d_dists[:, 1:] + 1e-12), \
            "degraded results must stay full-width and ordered"
        assert not np.any((d_ids >= dead_lo) & (d_ids < dead_hi)), \
            "dead shard leaked into the merge"
        for h_row, d_row in zip(h_ids, d_ids):
            overlaps.append(len(set(h_row) & set(d_row)) / k)

    healthy_p = _percentiles(healthy_walls)
    degraded_p = _percentiles(degraded_walls)
    return {
        "num_targets": num_targets,
        "searches": rounds,
        "healthy": {**healthy_p, "degraded_searches": 0},
        "degraded": {**degraded_p,
                     "degraded_searches": backend.degraded_searches,
                     "failed_shard": 2},
        "recall_vs_healthy": float(np.mean(overlaps)),
        "p99_ratio": degraded_p["p99_ms"] / max(healthy_p["p99_ms"], 1e-9),
    }


def _build_serving(scale: float):
    sim = SponsoredSearchSimulator(SimulatorConfig(
        num_queries=220, num_items=320, num_ads=90, num_users=160,
        tree_depth=3, tree_branching=2, seed=11))
    logs = sim.simulate_days(1)
    graph = build_graph(sim.universe, logs)
    model = make_model("amcad", graph, num_subspaces=2, subspace_dim=4,
                       seed=0)
    Trainer(model, TrainerConfig(steps=max(int(20 * scale), 5),
                                 batch_size=32, seed=0)).train()
    index_set = IndexSet(model, top_k=10).build()
    return graph, index_set


def bench_hot_swap(scale: float, index_set) -> dict:
    retriever = TwoLayerRetriever(index_set, expansion_k=5, ads_per_key=5)
    engine = ServingEngine(retriever, max_batch_size=16, num_shards=2)
    rng = np.random.default_rng(7)
    num_queries = index_set.spaces[Relation.Q2A].num_sources
    rounds = max(int(40 * scale), 8)
    swap_every = max(rounds // 4, 2)
    swap_walls = []
    served = 0
    for index in range(rounds):
        if index and index % swap_every == 0:
            replacement = TwoLayerRetriever(index_set, expansion_k=5,
                                            ads_per_key=5)
            start = time.perf_counter()
            engine.swap_retriever(replacement)
            swap_walls.append(time.perf_counter() - start)
        queries = rng.integers(0, num_queries, size=16)
        results = engine.serve(queries, k=10)
        served += len(results)
        assert all(result.ads.size > 0 for result in results), \
            "hot swap dropped or degraded an in-flight request"
    return {
        "requests_served": served,
        "swaps": engine.stats.swaps,
        "swap_pause_ms": {
            "mean": 1000.0 * float(np.mean(swap_walls)),
            "max": 1000.0 * float(np.max(swap_walls)),
        },
        "request_wall": _percentiles(engine.stats.request_wall_seconds),
        "degraded_requests": engine.stats.degraded_requests,
    }


def bench_resume(scale: float, graph, tmp_root) -> dict:
    steps = max(int(24 * scale), 8)
    every = max(steps // 4, 2)

    def trainer(path=None, checkpoint_every=every):
        model = make_model("amcad", graph, num_subspaces=2, subspace_dim=4,
                           seed=3)
        return Trainer(model, TrainerConfig(steps=steps, batch_size=32,
                                            seed=3,
                                            checkpoint_every=checkpoint_every),
                       checkpoint_path=path)

    # both runs consume the producer payload stream; the delta is writes
    start = time.perf_counter()
    reference = trainer(path=None).train()
    plain_wall = time.perf_counter() - start
    ckpt_path = tmp_root / "bench-checkpoint.npz"
    start = time.perf_counter()
    checkpointed = trainer(path=ckpt_path).train()
    ckpt_wall = time.perf_counter() - start
    assert checkpointed.losses == reference.losses

    # one-off save/restore walls + the bit-identical resume gate
    half = trainer(path=ckpt_path)
    half.train(steps=steps // 2)
    start = time.perf_counter()
    half.save_checkpoint()
    save_wall = time.perf_counter() - start
    resumed = trainer(path=ckpt_path)
    start = time.perf_counter()
    resumed_at = resumed.restore_checkpoint()
    restore_wall = time.perf_counter() - start
    report = resumed.train()
    assert resumed_at == steps // 2
    assert report.losses == reference.losses[steps // 2:], \
        "resume diverged from the uninterrupted run"

    return {
        "steps": steps,
        "checkpoint_every": every,
        "checkpoints_written": checkpointed.checkpoints_written,
        "train_wall_s": {"plain": plain_wall, "checkpointed": ckpt_wall},
        "checkpoint_overhead_pct":
            100.0 * max(ckpt_wall - plain_wall, 0.0) / plain_wall,
        "save_ms": 1000.0 * save_wall,
        "restore_ms": 1000.0 * restore_wall,
        "resume_bit_identical": True,
    }


def main(argv=None) -> int:
    parser = bench_parser("fault_tolerance",
                          "degraded search, hot swap, resume overhead")
    args = parser.parse_args(argv)
    import tempfile
    import pathlib

    degraded = bench_degraded_search(args.scale)
    print("degraded search: p99 %.2fms vs healthy %.2fms (ratio %.2f), "
          "recall %.3f"
          % (degraded["degraded"]["p99_ms"], degraded["healthy"]["p99_ms"],
             degraded["p99_ratio"], degraded["recall_vs_healthy"]))
    if args.scale >= 1 and degraded["p99_ratio"] > 2.0:
        print("FAIL: degraded p99 more than 2x healthy")
        return 1

    graph, index_set = _build_serving(args.scale)
    swap = bench_hot_swap(args.scale, index_set)
    print("hot swap: %d swaps over %d requests, pause max %.3fms, "
          "%d degraded"
          % (swap["swaps"], swap["requests_served"],
             swap["swap_pause_ms"]["max"], swap["degraded_requests"]))

    with tempfile.TemporaryDirectory() as tmp:
        resume = bench_resume(args.scale, graph, pathlib.Path(tmp))
    print("resume: %.1f%% checkpoint overhead, save %.1fms, restore %.1fms"
          % (resume["checkpoint_overhead_pct"], resume["save_ms"],
             resume["restore_ms"]))

    write_json_out(args.out, {
        "scale": args.scale,
        "degraded_search": degraded,
        "hot_swap": swap,
        "resume": resume,
    })
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
