"""Shared CLI conventions for the standalone benchmark scripts.

The pytest-driven benches (``pytest benchmarks/bench_*.py``) write
their reports through :mod:`repro.bench`.  Scripts meant to be run
directly (``python benchmarks/bench_training_throughput.py``) share
one convention via this module:

- ``--out PATH`` — where the single machine-readable JSON payload
  lands; defaults into the repo root's ``BENCH_<name>.json`` perf
  trajectory (committed, unlike the ``benchmarks/results/`` scratch
  directory, which is gitignored);
- ``--scale X`` — multiplies workload sizes, mirroring the
  ``REPRO_BENCH_SCALE`` convention of the pytest benches (CI runs tiny
  scales; the trajectory numbers use the default 1.0).
"""

from __future__ import annotations

import argparse
import json
import pathlib

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]


def bench_parser(name: str, description: str) -> argparse.ArgumentParser:
    """Argument parser with the shared ``--out`` / ``--scale`` flags."""
    parser = argparse.ArgumentParser(description=description)
    parser.add_argument(
        "--out", type=pathlib.Path,
        default=REPO_ROOT / ("BENCH_%s.json" % name),
        help="JSON result path (default: BENCH_%s.json at the repo root)"
             % name)
    parser.add_argument(
        "--scale", type=float, default=1.0,
        help="workload multiplier; < 1 for smoke runs (default 1.0)")
    return parser


def write_json_out(path, payload) -> pathlib.Path:
    """Write one bench's JSON payload and echo where it went."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print("wrote %s" % path)
    return path
