"""Shared CLI conventions for the standalone benchmark scripts.

The pytest-driven benches (``pytest benchmarks/bench_*.py``) write
their reports through :mod:`repro.bench`.  Scripts meant to be run
directly (``python benchmarks/bench_training_throughput.py``) share
one convention via this module:

- ``--out PATH`` — where the single machine-readable JSON payload
  lands; defaults into the repo root's ``BENCH_<name>.json`` perf
  trajectory (committed, unlike the ``benchmarks/results/`` scratch
  directory, which is gitignored);
- ``--scale X`` — multiplies workload sizes, mirroring the
  ``REPRO_BENCH_SCALE`` convention of the pytest benches (CI runs tiny
  scales; the trajectory numbers use the default 1.0).
"""

from __future__ import annotations

import argparse
import json
import pathlib

import numpy as np

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]


def exact_ground_truth(space, queries, k, num_workers: int = 1):
    """Top-``k`` ``(ids, dists)`` under the true mixed-curvature metric.

    One shared ground-truth path for every bench that compares an
    approximate search against the exact MNN result: the streamed
    :class:`~repro.retrieval.backend.ExactBackend`, never a
    materialised full distance matrix.  Compute it once per
    ``(space, queries)`` and pass the ids around.
    """
    from repro.retrieval import make_backend
    backend = make_backend("exact", num_workers=num_workers).build(space)
    return backend.search(np.asarray(queries, dtype=np.int64), k)


def euclidean_view(space):
    """A flat-Euclidean :class:`RelationSpace` over the same points.

    Concatenates the per-subspace embeddings into one κ=0 subspace with
    constant attention weights, so the mixed metric reduces to
    ``2·||x − y||`` — rank-equivalent to plain Euclidean search.  Lets
    a bench compute a Euclidean control ranking through the exact same
    streamed backend as the true-metric ground truth, instead of a
    second, memory-heavy ``(Q, N)`` distance matrix.
    """
    from repro.retrieval.mnn import RelationSpace
    src = np.concatenate(space.src_embeddings, axis=1)
    dst = np.concatenate(space.dst_embeddings, axis=1)
    return RelationSpace(
        relation=space.relation,
        src_embeddings=[src], dst_embeddings=[dst],
        src_weights=np.full((src.shape[0], 1), 0.5),
        dst_weights=np.full((dst.shape[0], 1), 0.5),
        kappas=[0.0])


def bench_parser(name: str, description: str) -> argparse.ArgumentParser:
    """Argument parser with the shared ``--out`` / ``--scale`` flags."""
    parser = argparse.ArgumentParser(description=description)
    parser.add_argument(
        "--out", type=pathlib.Path,
        default=REPO_ROOT / ("BENCH_%s.json" % name),
        help="JSON result path (default: BENCH_%s.json at the repo root)"
             % name)
    parser.add_argument(
        "--scale", type=float, default=1.0,
        help="workload multiplier; < 1 for smoke runs (default 1.0)")
    return parser


def write_json_out(path, payload) -> pathlib.Path:
    """Write one bench's JSON payload and echo where it went."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print("wrote %s" % path)
    return path
