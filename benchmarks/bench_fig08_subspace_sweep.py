"""Figure 8 — Next AUC vs number of subspaces and total dimension.

The paper sweeps 1-4 subspaces at total dims 24-120 (same *total*
budget, so more subspaces = thinner subspaces) and finds: one subspace
saturates early; two subspaces are generally best; 3-4 subspaces lose
at small total dims (each factor too thin) and catch up as dims grow.

The sweep here uses total dims {8, 16, 24} and 1/2/4 subspaces.
"""

import numpy as np
import pytest

from repro.bench import load_dataset, scaled_steps, write_report
from repro.evaluation import next_auc
from repro.models import make_model
from repro.training import Trainer, TrainerConfig

TOTAL_DIMS = (8, 16, 24)
SUBSPACE_COUNTS = (1, 2, 4)


def test_fig08_subspace_sweep(benchmark, bench_data):
    def run():
        table = {}
        lines = ["%-12s" % "total dim" + "".join("%12s" % ("%d subspace" % m)
                                                 for m in SUBSPACE_COUNTS)]
        for total in TOTAL_DIMS:
            row = []
            for m in SUBSPACE_COUNTS:
                if total % m != 0:
                    row.append(float("nan"))
                    continue
                model = make_model("amcad", bench_data.train_graph,
                                   num_subspaces=m, subspace_dim=total // m,
                                   seed=1)
                Trainer(model, TrainerConfig(
                    steps=scaled_steps(180), batch_size=64,
                    learning_rate=0.05, seed=1)).train()
                auc = next_auc(model.similarity, bench_data.next_graph,
                               num_samples=400)
                row.append(auc)
                table[(total, m)] = auc
            lines.append("%-12d" % total
                         + "".join("%12.2f" % v for v in row))

        # shape: AUC should improve (or hold) as the total dimension
        # budget grows, for the 2-subspace configuration
        two_sub = [table[(t, 2)] for t in TOTAL_DIMS]
        assert two_sub[-1] >= two_sub[0] - 1.0, two_sub
        lines.append("")
        lines.append("paper (Fig. 8): 2 subspaces generally best; "
                     "3-4 subspaces need larger total dims to catch up")
        write_report("fig08_subspace_sweep.txt",
                     "Fig 8 - Next AUC vs subspace count x dimension", lines)
        return table

    benchmark.pedantic(run, rounds=1, iterations=1)
