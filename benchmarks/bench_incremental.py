"""Incremental day-level training (paper §V-C) — stability and cost.

The paper replaces full-window retraining with day-level incremental
training plus an LRU feature-exit mechanism, reporting (a) large
savings in training time and (b) day-over-day metric stability.  This
bench trains one model from scratch on day 0, then runs incremental
days 1-3 at a fraction of the step budget, tracking next-day AUC and
evicted features.
"""

import numpy as np
import pytest

from repro.bench import scaled_steps, write_report
from repro.evaluation import next_auc
from repro.graph import build_graph
from repro.models import make_model
from repro.training import IncrementalTrainer, Trainer, TrainerConfig


def test_incremental_training_stability(benchmark, bench_data):
    def run():
        logs = bench_data.simulator.simulate_days(5, start_day=40)
        graph0 = build_graph(bench_data.universe, logs[:1])
        model = make_model("amcad", graph0, num_subspaces=2, subspace_dim=4,
                           seed=0)
        full_steps = scaled_steps(300)
        scratch = Trainer(model, TrainerConfig(
            steps=full_steps, batch_size=64, learning_rate=0.05)).train()

        incremental = IncrementalTrainer(
            model, bench_data.universe,
            steps_per_day=max(10, full_steps // 6), lru_horizon_days=2,
            trainer_config=TrainerConfig(batch_size=64, learning_rate=0.05))

        lines = ["day 0 (scratch): %d steps, %.1fs"
                 % (full_steps, scratch.wall_seconds)]
        aucs = []
        for day in range(1, 4):
            result = incremental.train_day(logs[day])
            eval_graph = build_graph(bench_data.universe, logs[day + 1:day + 2])
            auc = next_auc(model.similarity, eval_graph, num_samples=300)
            aucs.append(auc)
            lines.append("day %d (incremental): %d steps, %.1fs, "
                         "next-day AUC %.2f, evicted %d features"
                         % (day, result.report.steps,
                            result.report.wall_seconds, auc,
                            result.evicted_features))

        # shape: incremental days are much cheaper than scratch and the
        # metric stays smooth (paper: "relatively smooth every day")
        day_cost = np.mean([r.report.wall_seconds
                            for r in incremental.history])
        assert day_cost < scratch.wall_seconds
        assert max(aucs) - min(aucs) < 12.0, "day-over-day AUC should be smooth"
        lines.append("")
        lines.append("paper: incremental training keeps daily metrics smooth "
                     "while avoiding full-window retraining")
        write_report("incremental.txt",
                     "Incremental training - cost and stability", lines)
        return aucs

    benchmark.pedantic(run, rounds=1, iterations=1)
