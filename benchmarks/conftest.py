"""Benchmark-suite configuration.

All benches run one full pipeline per benchmark round (training is the
payload, not a micro-op), so rounds/iterations are pinned to 1 via
``benchmark.pedantic`` inside each bench.
"""

import pytest

from repro.bench import load_dataset


@pytest.fixture(scope="session")
def bench_data():
    """The shared simulated platform (cached across benches)."""
    return load_dataset()
