"""Batched vs single-request serving throughput.

The deployed system never serves one request at a time: lookups are
batched inside the engine, which is where most of its tens-of-thousands
QPS headroom comes from.  This bench quantifies the reproduction's
analogue on a 64-request stream over the default synthetic universe:

- **looped**   — the reference per-request path
  (``TwoLayerRetriever.retrieve_looped``), python dict accumulation;
- **batched**  — the vectorised ``retrieve_batch`` over the same 64
  requests in one call;
- **engine**   — the micro-batching ``ServingEngine`` with a warm LRU
  expansion cache (the repeat-traffic upper bound).

Asserts the batched path returns identical top-k ads and is ≥ 3× the
looped throughput, and emits both a text report and a JSON result
(``benchmarks/results/serving_batch.json``).
"""

import time

import numpy as np
import pytest

from repro.bench import scaled_steps, write_json_report, write_report
from repro.models import make_model
from repro.retrieval import IndexSet, TwoLayerRetriever
from repro.serving import ServingEngine
from repro.training import Trainer, TrainerConfig

NUM_REQUESTS = 64
TOP_K = 20


def test_batched_serving_throughput(benchmark, bench_data):
    def run():
        model = make_model("amcad", bench_data.train_graph, num_subspaces=2,
                           subspace_dim=4, seed=1)
        Trainer(model, TrainerConfig(steps=scaled_steps(60), batch_size=64,
                                     seed=1)).train()
        index_set = IndexSet(model, top_k=50).build()
        retriever = TwoLayerRetriever(index_set, expansion_k=10,
                                      ads_per_key=10)

        rng = np.random.default_rng(0)
        num_queries = bench_data.train_graph.num_nodes[
            list(bench_data.train_graph.num_nodes)[0]]
        queries = rng.integers(num_queries, size=NUM_REQUESTS)
        preclicks = [list(rng.integers(100, size=2)) for _ in queries]

        # warm both paths once (first-touch allocations out of the timing)
        retriever.retrieve_looped(int(queries[0]), preclicks[0], k=TOP_K)
        retriever.retrieve_batch(queries, preclicks, k=TOP_K)

        start = time.perf_counter()
        looped = [retriever.retrieve_looped(int(q), p, k=TOP_K)
                  for q, p in zip(queries, preclicks)]
        looped_seconds = time.perf_counter() - start

        start = time.perf_counter()
        batched = retriever.retrieve_batch(queries, preclicks, k=TOP_K)
        batched_seconds = time.perf_counter() - start

        for one, ref in zip(batched, looped):
            assert np.array_equal(one.ads, ref.ads), \
                "batched top-k must match the looped reference"
            assert np.allclose(one.scores, ref.scores)

        engine = ServingEngine(retriever, max_batch_size=16, cache_size=256)
        engine.serve(queries, preclicks, k=TOP_K)     # cold pass fills cache
        start = time.perf_counter()
        engine.serve(queries, preclicks, k=TOP_K)     # warm repeat traffic
        engine_seconds = time.perf_counter() - start

        speedup = looped_seconds / batched_seconds
        rps = {
            "looped": NUM_REQUESTS / looped_seconds,
            "batched": NUM_REQUESTS / batched_seconds,
            "engine_warm_cache": NUM_REQUESTS / engine_seconds,
        }
        assert speedup >= 3.0, (
            "retrieve_batch must be >= 3x the looped path, got %.1fx"
            % speedup)

        lines = [
            "%d requests, top-%d, default synthetic universe"
            % (NUM_REQUESTS, TOP_K),
            "looped  retrieve:        %8.1f req/s (%.2f ms/req)"
            % (rps["looped"], 1000 * looped_seconds / NUM_REQUESTS),
            "vectorised batch:        %8.1f req/s (%.2f ms/req)"
            % (rps["batched"], 1000 * batched_seconds / NUM_REQUESTS),
            "engine, warm LRU cache:  %8.1f req/s (%.2f ms/req)"
            % (rps["engine_warm_cache"], 1000 * engine_seconds / NUM_REQUESTS),
            "batch speedup over looped: %.1fx (required >= 3x)" % speedup,
            "engine cache hit rate: %.0f%%"
            % (100 * engine.stats.cache_hit_rate),
        ]
        write_report("serving_batch.txt",
                     "Batched vs single-request serving throughput", lines)
        write_json_report("serving_batch.json", {
            "num_requests": NUM_REQUESTS,
            "k": TOP_K,
            "looped_seconds": looped_seconds,
            "batched_seconds": batched_seconds,
            "engine_warm_seconds": engine_seconds,
            "requests_per_second": rps,
            "batch_speedup": speedup,
            "engine_cache_hit_rate": engine.stats.cache_hit_rate,
        })
        return rps

    benchmark.pedantic(run, rounds=1, iterations=1)
