"""Table V — statistics of the interaction graph per log window.

Paper: 1-day logs give 40M/60M/6M query/item/ad nodes and 5.3B edges;
7-day logs give 150M/140M/10M and 30.8B.  Here the same construction
runs on the synthetic platform at ~30000x reduced scale; the shape to
check is that nodes grow sub-linearly with the window (the entity
universe saturates) while edges keep growing.
"""

import numpy as np

from repro.bench import load_dataset, write_report
from repro.data.logs import merge_logs
from repro.graph import build_graph
from repro.graph.schema import EdgeType, NodeType


def _window_stats(data, num_days):
    logs = data.simulator.simulate_days(num_days, start_day=10)
    graph = build_graph(data.universe, logs)
    active = {
        node_type: int((graph.degree(node_type) > 0).sum())
        for node_type in NodeType
    }
    return active, graph


def test_table05_graph_statistics(benchmark, bench_data):
    def run():
        lines = ["%-8s %8s %8s %8s %10s" % ("window", "#query", "#item",
                                            "#ad", "#edges")]
        rows = []
        for days in (1, 3, 7):
            active, graph = _window_stats(bench_data, days)
            rows.append((days, active[NodeType.QUERY],
                         active[NodeType.ITEM], active[NodeType.AD],
                         graph.num_edges()))
            lines.append("%-8s %8d %8d %8d %10d" % (
                "%d day" % days, *rows[-1][1:]))
        # shape checks mirroring the paper's table
        assert rows[-1][4] > rows[0][4], "edges must grow with the window"
        assert rows[-1][1] >= rows[0][1], "active nodes must not shrink"
        lines.append("")
        lines.append("paper (Table V): 1-day 40M/60M/6M nodes, 5.3B edges; "
                     "7-day 150M/140M/10M, 30.8B edges")
        write_report("table05_graph_stats.txt",
                     "Table V - graph statistics vs log window", lines)
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
