"""Async serving plane: admission-controller calibration + load sweep.

Closes the loop the admission layer (PR 7) was built for: drive the
real :class:`ServingEngine` through the SLO-aware
:class:`AdmissionController` with session-replayed traffic and check
the measured queueing behaviour against the Erlang-C capacity model.

Three parts land in ``BENCH_serving_async.json``:

- **calibration sweep** — Poisson traffic at 0.3/0.5/0.7/0.85 of the
  measured saturation point (``workers / mean service time``) plus a
  1.4x overload point.  Per point: measured mean/percentile waits vs.
  the ``allen_cunneen_wait`` prediction fed with the in-run measured
  service mean and squared CV.  Each point is the **median of three
  seeded runs** of ~1.2k requests, and every run **re-probes the
  service time immediately before driving**: on shared hardware the
  engine's service time drifts with machine load, so an offered rate
  pinned to a stale probe can silently cross the real saturation
  point, and a single multi-ms OS stall cascades through a run's queue
  and can inflate its mean wait several-fold — the fresh probe handles
  the drift, the median handles the stalls.  Gates at
  ``--scale >= 1``: no shedding below saturation (across all runs),
  shedding above it, served p99 wait within the deadline (a
  construction guarantee worth re-measuring), and the median
  measured/predicted mean-wait ratio within **[0.4, 2.5]** at the
  0.5/0.7/0.85 points (the documented band);
- **arrival processes** — the same offered load (0.7 of saturation)
  under a *tight* 5x-service deadline, over a synthetic exponential
  service so the comparison is noise-free: bursty (MMPP) traffic must
  shed more than Poisson at equal mean rate — the reason capacity
  plans cannot be made from mean QPS alone;
- **priority lanes** — 1.4x overload with half the queue reserved:
  the paid lane must shed at a lower rate than organic.

Run directly (``PYTHONPATH=src python benchmarks/bench_serving_async.py
[--scale X] [--out PATH]``); CI runs ``--scale 0.05`` as a smoke.
"""

from __future__ import annotations

import sys

import numpy as np

sys.path.insert(0, str(__import__("pathlib").Path(__file__).parent))
from common import bench_parser, write_json_out  # noqa: E402

from repro.data import SimulatorConfig, SponsoredSearchSimulator
from repro.graph import build_graph
from repro.models import make_model
from repro.retrieval import IndexSet, TwoLayerRetriever
from repro.serving import (
    AdmissionController,
    ServingEngine,
    SyntheticService,
    TrafficGenerator,
    allen_cunneen_wait,
    erlang_c_wait,
)
from repro.training import Trainer, TrainerConfig

FLEET = 4                      # virtual workers in front of the engine
SUB_SATURATION = (0.3, 0.5, 0.7, 0.85)
OVERLOAD = 1.4
CALIBRATION_LOADS = (0.5, 0.7, 0.85)   # points the ratio gate applies to
RATIO_BAND = (0.4, 2.5)
REQUESTS_PER_POINT = 1200
RUNS_PER_POINT = 3             # median across runs de-noises OS stalls
PROBE_REQUESTS = 200           # fresh service probe before every run
MAX_QUEUE = 512
#: the bench SLO: a queue-wait budget of 40x the measured mean service
DEADLINE_SERVICE_MULTIPLE = 40.0

SYNTH_SERVICE_SECONDS = 0.01
SYNTH_REQUESTS = 4000
SYNTH_DEADLINE_MS = 50.0       # 5x service: tight enough to shed


def _build_engine(seed: int = 7) -> ServingEngine:
    simulator = SponsoredSearchSimulator(SimulatorConfig(
        num_queries=220, num_items=320, num_ads=90, num_users=160,
        tree_depth=3, tree_branching=2, seed=seed))
    logs = simulator.simulate_days(1)
    graph = build_graph(simulator.universe, logs)
    model = make_model("amcad", graph, num_subspaces=2, subspace_dim=4,
                       seed=seed)
    Trainer(model, TrainerConfig(steps=12, batch_size=32, seed=seed)).train()
    retriever = TwoLayerRetriever(IndexSet(model, top_k=15).build(),
                                  expansion_k=4, ads_per_key=4)
    # no LRU cache: a cache that keeps warming across sweep points
    # makes the service process non-stationary, so the probed
    # saturation point drifts and the calibration is meaningless
    engine = ServingEngine(retriever, max_batch_size=FLEET, cache_size=0)
    return engine, logs


def _measure_service(engine, traffic, requests: int) -> float:
    """Warm the cache and measure the mean single-request service time."""
    probe = traffic.generate(qps=100.0, duration=requests / 100.0, seed=99)
    before_busy = engine.stats.total_busy_seconds
    before_n = engine.stats.requests
    for request in probe:
        engine.serve_batch([request.query], [request.preclicks])
    return ((engine.stats.total_busy_seconds - before_busy)
            / max(engine.stats.requests - before_n, 1))


def _run_point(engine, traffic, fraction: float, requests: int,
               probe_requests: int, seed: int) -> dict:
    """One seeded run: fresh service probe, then the closed-loop drive."""
    service = _measure_service(engine, traffic, probe_requests)
    saturation_qps = FLEET / service
    deadline_ms = 1000.0 * DEADLINE_SERVICE_MULTIPLE * service
    qps = fraction * saturation_qps
    ctrl = AdmissionController(engine, max_queue=MAX_QUEUE,
                               deadline_ms=deadline_ms, max_batch=1,
                               num_workers=FLEET)
    report = traffic.drive(ctrl, qps=qps, duration=requests / qps,
                           seed=seed)
    payload = _point_payload(ctrl, report, fraction)
    payload.update({
        "probe_service_ms": 1000.0 * service,
        "saturation_qps": saturation_qps,
        "deadline_ms": deadline_ms,
        "p99_within_deadline": bool(
            report.wait_ms["p99"] <= deadline_ms + 1e-9),
    })
    return payload


def _point_payload(ctrl, report, load_fraction: float) -> dict:
    stats = ctrl.stats
    samples = np.asarray(stats.service_seconds, dtype=np.float64)
    mean_service = float(samples.mean()) if samples.size else 0.0
    cs2 = (float(samples.var() / mean_service ** 2)
           if mean_service > 0 else 0.0)
    arrival_rate = stats.served / report.duration
    corrected = (allen_cunneen_wait(arrival_rate, 1.0 / mean_service,
                                    FLEET, cs2=cs2)
                 if mean_service > 0 else 0.0)
    raw = (erlang_c_wait(arrival_rate, 1.0 / mean_service, FLEET)
           if mean_service > 0 else 0.0)
    measured = stats.mean_wait_seconds
    return {
        "load_fraction": load_fraction,
        "target_qps": report.target_qps,
        "offered": report.offered,
        "served": report.served,
        "achieved_qps": report.achieved_qps,
        "shed": report.shed,
        "shed_queue": stats.shed_queue,
        "shed_deadline": stats.shed_deadline,
        "shed_rate": report.shed_rate,
        "service_ms": {"mean": 1000.0 * mean_service, "cs2": cs2},
        "mean_wait_ms": 1000.0 * measured,
        "wait_ms": report.wait_ms,
        "latency_ms": report.latency_ms,
        "predicted_wait_ms": {"erlang_c": 1000.0 * raw,
                              "allen_cunneen": 1000.0 * corrected},
        "ratio_vs_predicted": (measured / corrected if corrected > 0
                               else None),
    }


def _sweep(engine, traffic, scale: float) -> dict:
    requests = max(int(REQUESTS_PER_POINT * scale), 40)
    probe_requests = max(int(PROBE_REQUESTS * scale), 40)
    # one throwaway warm-up pass so the first probe isn't cold
    _measure_service(engine, traffic, probe_requests)
    points = []
    for i, fraction in enumerate(SUB_SATURATION + (OVERLOAD,)):
        runs = [_run_point(engine, traffic, fraction, requests,
                           probe_requests, seed=100 + 10 * i + r)
                for r in range(RUNS_PER_POINT)]
        ratios = sorted(run["ratio_vs_predicted"] for run in runs
                        if run["ratio_vs_predicted"] is not None)
        points.append({
            "load_fraction": fraction,
            "median_target_qps": sorted(
                run["target_qps"] for run in runs)[len(runs) // 2],
            "runs": runs,
            "shed_total": sum(run["shed"] for run in runs),
            "median_mean_wait_ms": sorted(
                run["mean_wait_ms"] for run in runs)[len(runs) // 2],
            "median_ratio_vs_predicted": (
                ratios[len(ratios) // 2] if ratios else None),
            "max_p99_wait_ms": max(run["wait_ms"]["p99"] for run in runs),
            "p99_within_deadline": all(run["p99_within_deadline"]
                                       for run in runs),
        })
    all_runs = [run for p in points for run in p["runs"]]
    return {
        "fleet": FLEET,
        "max_queue": MAX_QUEUE,
        "requests_per_point": requests,
        "runs_per_point": RUNS_PER_POINT,
        "probe_requests": probe_requests,
        "median_probe_service_ms": sorted(
            run["probe_service_ms"]
            for run in all_runs)[len(all_runs) // 2],
        "median_saturation_qps": sorted(
            run["saturation_qps"] for run in all_runs)[len(all_runs) // 2],
        "deadline_service_multiple": DEADLINE_SERVICE_MULTIPLE,
        "ratio_band": list(RATIO_BAND),
        "calibration_loads": list(CALIBRATION_LOADS),
        "points": points,
    }


def _arrival_processes(logs, scale: float) -> dict:
    requests = max(int(SYNTH_REQUESTS * scale), 60)
    qps = 0.7 * FLEET / SYNTH_SERVICE_SECONDS
    out = {"target_qps": qps, "requests": requests,
           "deadline_ms": SYNTH_DEADLINE_MS,
           "service_ms": 1000.0 * SYNTH_SERVICE_SECONDS}
    for process in ("poisson", "bursty", "diurnal"):
        traffic = TrafficGenerator(logs, process=process, seed=21)
        svc = SyntheticService(SYNTH_SERVICE_SECONDS, "exponential",
                               seed=22)
        ctrl = AdmissionController(svc, max_queue=MAX_QUEUE,
                                   deadline_ms=SYNTH_DEADLINE_MS,
                                   max_batch=1, num_workers=FLEET)
        report = traffic.drive(ctrl, qps=qps, duration=requests / qps)
        out[process] = {
            "offered": report.offered,
            "shed_rate": report.shed_rate,
            "mean_wait_ms": report.mean_wait_ms,
            "wait_ms": report.wait_ms,
        }
    return out


def _priority_lanes(logs, scale: float) -> dict:
    requests = max(int(SYNTH_REQUESTS * scale), 60)
    qps = OVERLOAD * FLEET / SYNTH_SERVICE_SECONDS
    traffic = TrafficGenerator(logs, paid_share=0.25, seed=31)
    svc = SyntheticService(SYNTH_SERVICE_SECONDS, "exponential", seed=32)
    ctrl = AdmissionController(svc, max_queue=64,
                               deadline_ms=SYNTH_DEADLINE_MS,
                               max_batch=1, num_workers=FLEET,
                               priority_share=0.5)
    traffic.drive(ctrl, qps=qps, duration=requests / qps)
    stats = ctrl.stats
    rates = {lane: (stats.shed_by_lane[lane]
                    / max(stats.offered_by_lane[lane], 1))
             for lane in ("paid", "organic")}
    return {"target_qps": qps, "priority_share": 0.5,
            "paid_share": 0.25, "offered_by_lane": dict(stats.offered_by_lane),
            "shed_rate_by_lane": rates}


def _gates(sweep: dict, processes: dict, priority: dict) -> dict:
    by_load = {p["load_fraction"]: p for p in sweep["points"]}
    below = [by_load[f] for f in SUB_SATURATION]
    overload = by_load[OVERLOAD]
    ratios = {f: by_load[f]["median_ratio_vs_predicted"]
              for f in CALIBRATION_LOADS}
    return {
        "no_shed_below_saturation": all(p["shed_total"] == 0
                                        for p in below),
        "shed_above_saturation": overload["shed_total"] > 0,
        "p99_wait_within_deadline": all(p["p99_within_deadline"]
                                        for p in sweep["points"]),
        "calibrated_within_band": all(
            r is not None and RATIO_BAND[0] <= r <= RATIO_BAND[1]
            for r in ratios.values()),
        "calibration_ratios": ratios,
        "bursty_sheds_more_than_poisson": (
            processes["bursty"]["shed_rate"]
            > processes["poisson"]["shed_rate"]),
        "paid_lane_sheds_less": (
            priority["shed_rate_by_lane"]["paid"]
            < priority["shed_rate_by_lane"]["organic"]),
    }


def main(argv=None) -> int:
    parser = bench_parser(
        "serving_async",
        "SLO-aware admission control: calibration sweep, arrival "
        "processes, priority lanes")
    args = parser.parse_args(argv)

    engine, logs = _build_engine()
    traffic = TrafficGenerator(logs, paid_share=0.25, seed=11)

    sweep = _sweep(engine, traffic, args.scale)
    processes = _arrival_processes(logs, args.scale)
    priority = _priority_lanes(logs, args.scale)
    gates = _gates(sweep, processes, priority)

    payload = {
        "scale": args.scale,
        "sweep": sweep,
        "arrival_processes": processes,
        "priority": priority,
        "gates": gates,
    }
    write_json_out(args.out, payload)

    print("median saturation %.0f qps (fleet %d, service %.3f ms); "
          "deadline %gx service"
          % (sweep["median_saturation_qps"], FLEET,
             sweep["median_probe_service_ms"],
             sweep["deadline_service_multiple"]))
    for p in sweep["points"]:
        ratio = p["median_ratio_vs_predicted"]
        offered = sum(run["offered"] for run in p["runs"])
        print("  load %.2f  qps %7.0f  median wait %6.3f ms  max p99 "
              "%6.3f ms  shed %5.1f%%  measured/predicted %s"
              % (p["load_fraction"], p["median_target_qps"],
                 p["median_mean_wait_ms"], p["max_p99_wait_ms"],
                 100.0 * p["shed_total"] / max(offered, 1),
                 "%.2f" % ratio if ratio is not None else "n/a"))
    print("arrival processes @0.7 load: shed poisson %.1f%%  bursty %.1f%%"
          "  diurnal %.1f%%"
          % tuple(100.0 * processes[p]["shed_rate"]
                  for p in ("poisson", "bursty", "diurnal")))
    print("priority @%.1fx overload: shed paid %.1f%%  organic %.1f%%"
          % (OVERLOAD,
             100.0 * priority["shed_rate_by_lane"]["paid"],
             100.0 * priority["shed_rate_by_lane"]["organic"]))

    if args.scale >= 1.0:
        failed = [name for name, ok in gates.items()
                  if isinstance(ok, bool) and not ok]
        if failed:
            print("FAIL: %s" % ", ".join(failed))
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
